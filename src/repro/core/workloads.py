"""Workload generators: the directed tests of the reproduction.

Each generator renders the *same test intent* in two coding styles:

- **ADVM style** — the test references only ``Globals.inc`` defines and
  ``Base_*`` functions; it is derivative- and target-independent and is
  what populates the module test environments;
- **hardwired style** — the ablation baseline: every value is a literal
  resolved for one specific (derivative, target), base functions are
  inlined, and firmware is called directly.  This is the coding style the
  paper's methodology replaces, and the porting benchmarks measure the
  difference.

Both styles are produced from one parametric template, so they are
semantically identical by construction; the hardwired renderer pulls its
literals from :meth:`repro.core.defines.GlobalDefines.resolved_for`, the
same table the ADVM build resolves through the assembler.
"""

from __future__ import annotations

from repro.core.defines import GlobalDefines
from repro.core.environment import (
    GlobalLayer,
    ModuleTestEnvironment,
    TestCell,
)
from repro.core.targets import Target, all_targets
from repro.soc.derivatives import Derivative, all_derivatives
from repro.soc.device import FAIL_MAGIC, PASS_MAGIC
from repro.soc.memorymap import NVM_PAGE_BYTES

PATTERN_SEED = 0x5EED_0100

#: Pages chosen to be valid on the *narrowest* derivative (32 pages), so
#: one test suite runs everywhere — distinct per test for coverage.
def page_for_test(index: int) -> int:
    return (7 + 3 * index) % 32


# --------------------------------------------------------------------------
# NVM page tests (the Figure 6 workload)
# --------------------------------------------------------------------------

def nvm_test_advm(index: int) -> TestCell:
    """Figure 6's test shape: select a page via the abstraction layer,
    program a pattern, verify the array contents."""
    source = f"""\
;; Code for test {index} -- program and verify an NVM page (Figure 6)
.INCLUDE Globals.inc
TEST_PAGE .EQU TEST{index}_TARGET_PAGE     ;; local control placeholder
_main:
    ;; create the control value exactly as Figure 6 shows
    LOAD d14, 0
    INSERT d14, d14, TEST_PAGE, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    LOAD a11, NVM_CTRL_ADDR
    ST.W [a11], d14
    ;; stage a recognisable word in the page buffer
    LOAD d4, 0
    LOAD d5, PATTERN_SEED + {index}
    CALL Base_NVM_Write_Buffer_Word
    ;; program via the base functions and check status
    LOAD d4, TEST_PAGE
    CALL Base_NVM_Program_Page
    CMPI d2, 0
    JNZ test_fail
    ;; read back from the memory-mapped array and verify
    LOAD a4, NVM_ARRAY_BASE + TEST_PAGE * NVM_PAGE_BYTES
    LD.W d4, [a4]
    LOAD d5, PATTERN_SEED + {index}
    CALL Base_Check_EQ
    JMP Base_Report_Pass
test_fail:
    JMP Base_Report_Fail
"""
    return TestCell(
        name=f"TEST_NVM_PAGE_{index:03d}",
        source=source,
        description=f"program/verify NVM page (pattern {index})",
        testplan_ids=(f"NVM_{index:03d}",),
    )


def nvm_test_hardwired(
    index: int,
    defines: GlobalDefines,
    derivative: Derivative,
    tgt: Target,
) -> str:
    """The same test with every value hardwired for one derivative."""
    table = defines.resolved_for(derivative, tgt)
    page = page_for_test(index)
    pattern = PATTERN_SEED + index
    pos = table["PAGE_FIELD_START_POSITION"]
    width = table["PAGE_FIELD_SIZE"]
    cmd_pos = table["NVM_CMD_FIELD_POS"]
    cmd_width = table["NVM_CMD_FIELD_SIZE"]
    page_address = table["NVM_ARRAY_BASE"] + page * NVM_PAGE_BYTES
    return f"""\
;; test {index} hardwired for {derivative.name}/{tgt.name} (no abstraction)
_main:
    LOAD d14, 0
    INSERT d14, d14, {page}, {pos}, {width}
    LOAD a11, {table['NVM_CTRL_ADDR']:#x}
    ST.W [a11], d14
    LOAD a11, {table['NVM_ADDRREG_ADDR']:#x}
    LOAD d11, 0
    ST.W [a11], d11
    LOAD a11, {table['NVM_DATA_ADDR']:#x}
    LOAD d11, {pattern:#x}
    ST.W [a11], d11
    INSERT d14, d14, 1, {cmd_pos}, {cmd_width}
    SETB d14, {table['NVM_START_BIT_POS']}
    LOAD a11, {table['NVM_CTRL_ADDR']:#x}
    ST.W [a11], d14
    LOAD d13, {table['POLL_LIMIT']}
    LOAD a11, {table['NVM_STAT_ADDR']:#x}
test_poll:
    LD.W d2, [a11]
    TSTB d2, {table['NVM_STAT_BUSY_BIT']}
    JZ test_settle
    DJNZ d13, test_poll
    JMP test_fail
test_settle:
    LD.W d2, [a11]
    TSTB d2, {table['NVM_STAT_ERR_BIT']}
    JNZ test_fail
    LOAD a4, {page_address:#x}
    LD.W d4, [a4]
    LOAD d5, {pattern:#x}
    CMP d4, d5
    JNZ test_fail
    LOAD d0, {PASS_MAGIC:#x}
    STORE [{table['RESULT_ADDR']:#x}], d0
    LOAD d1, 3
    STORE [{table['GPIO_DIR_ADDR']:#x}], d1
    STORE [{table['GPIO_OUT_ADDR']:#x}], d1
    HALT
test_fail:
    LOAD d0, {FAIL_MAGIC:#x}
    STORE [{table['RESULT_ADDR']:#x}], d0
    LOAD d1, 3
    STORE [{table['GPIO_DIR_ADDR']:#x}], d1
    LOAD d1, 1
    STORE [{table['GPIO_OUT_ADDR']:#x}], d1
    HALT
"""


# --------------------------------------------------------------------------
# Register-init tests (the Figure 7 workload)
# --------------------------------------------------------------------------

def reginit_test_advm(index: int, register_define: str) -> TestCell:
    """Figure 7's test shape: initialise a register through the wrapped
    embedded-software function, then verify."""
    source = f"""\
;; Code for test {index} -- register init via firmware wrapper (Figure 7)
.INCLUDE Globals.inc
_main:
    LOAD a4, {register_define}
    LOAD d4, REG_TEST_VALUE_{index}
    CALL Base_Init_Register
    LOAD d4, [{register_define}]
    LOAD d5, REG_TEST_VALUE_{index}
    CALL Base_Check_EQ
    JMP Base_Report_Pass
"""
    return TestCell(
        name=f"TEST_REG_INIT_{index:03d}",
        source=source,
        description=f"init {register_define} via firmware and verify",
        testplan_ids=(f"REG_{index:03d}",),
    )


def reginit_test_hardwired(
    index: int,
    register_define: str,
    value: int,
    defines: GlobalDefines,
    derivative: Derivative,
    tgt: Target,
) -> str:
    """Baseline: calls the firmware entry point directly with literal
    registers — the Figure 2 'abuse' that porting must then repair."""
    table = defines.resolved_for(derivative, tgt)
    address = table[register_define]
    abi = derivative.es_abi
    return f"""\
;; test {index} hardwired for {derivative.name}: direct firmware call
_main:
    LOAD {abi.init_addr_reg}, {address:#x}
    LOAD {abi.init_value_reg}, {value:#x}
    LOAD A12, {abi.init_register_symbol}
    CALL A12
    LOAD d4, [{address:#x}]
    LOAD d5, {value:#x}
    CMP d4, d5
    JNZ test_fail
    LOAD d0, {PASS_MAGIC:#x}
    STORE [{table['RESULT_ADDR']:#x}], d0
    LOAD d1, 3
    STORE [{table['GPIO_DIR_ADDR']:#x}], d1
    STORE [{table['GPIO_OUT_ADDR']:#x}], d1
    HALT
test_fail:
    LOAD d0, {FAIL_MAGIC:#x}
    STORE [{table['RESULT_ADDR']:#x}], d0
    LOAD d1, 3
    STORE [{table['GPIO_DIR_ADDR']:#x}], d1
    LOAD d1, 1
    STORE [{table['GPIO_OUT_ADDR']:#x}], d1
    HALT
"""


# --------------------------------------------------------------------------
# UART / timer / watchdog / data-path tests
# --------------------------------------------------------------------------

def uart_loopback_test(index: int) -> TestCell:
    byte = 0x41 + (index % 26)  # 'A'..'Z'
    source = f"""\
;; UART loopback test {index}
.INCLUDE Globals.inc
TEST_BYTE .EQU {byte:#x}
_main:
    CALL Base_UART_Enable_Loopback
    LOAD d4, TEST_BYTE
    CALL Base_UART_Send
    CALL Base_UART_Recv
    MOV d4, d2
    LOAD d5, TEST_BYTE
    CALL Base_Check_EQ
    JMP Base_Report_Pass
"""
    return TestCell(
        name=f"TEST_UART_LOOP_{index:03d}",
        source=source,
        description=f"UART loopback of byte {byte:#x}",
        testplan_ids=(f"UART_{index:03d}",),
    )


def uart_banner_test() -> TestCell:
    source = """\
;; UART banner: visible on every platform with a serial pod
.INCLUDE Globals.inc
_main:
    CALL Base_UART_Enable
    LOAD a4, banner
    CALL Base_UART_Print
    JMP Base_Report_Pass
.SECTION data
banner:
    .ASCIIZ "ADVM"
"""
    return TestCell(
        name="TEST_UART_BANNER",
        source=source,
        description="print a banner over the UART",
        testplan_ids=("UART_900",),
    )


def timer_delay_test(index: int, ticks: int = 50) -> TestCell:
    source = f"""\
;; timer one-shot delay test {index}
.INCLUDE Globals.inc
TEST_TICKS .EQU {ticks}
_main:
    LOAD d4, TEST_TICKS
    CALL Base_Timer_Delay
    ;; the timer must be stopped again afterwards
    LOAD d4, [TIM_CTRL_ADDR]
    LOAD d5, 0
    CALL Base_Check_EQ
    JMP Base_Report_Pass
"""
    return TestCell(
        name=f"TEST_TIMER_DELAY_{index:03d}",
        source=source,
        description=f"one-shot delay of {ticks} ticks",
        testplan_ids=(f"TIMER_{index:03d}",),
    )


def spin_burn_test(index: int, loops: int = 4096) -> TestCell:
    """Calibrated busy-wait: burn *loops* pure-spin iterations, verify
    the counter ran to zero.  The delay shape embedded software uses
    between device operations — and the worst case for an emulator that
    retires every iteration, which is exactly what the idle fast-forward
    exists to elide."""
    source = f"""\
;; busy-wait burn test {index}: {loops} pure spin iterations
.INCLUDE Globals.inc
SPIN_LOOPS .EQU {loops}
_main:
    LOAD d4, SPIN_LOOPS
    CALL Base_Spin
    ;; the spin counter must have run down to exactly zero
    MOV d4, d11
    LOAD d5, 0
    CALL Base_Check_EQ
    JMP Base_Report_Pass
"""
    return TestCell(
        name=f"TEST_SPIN_BURN_{index:03d}",
        source=source,
        description=f"pure busy-wait of {loops} spin iterations",
        testplan_ids=(f"DELAY_{index:03d}",),
    )


_WORD = 0xFFFF_FFFF


def _xorshift_checksum(seed: int, loops: int) -> int:
    """Python mirror of the ``compute_burn_test`` kernel: xorshift32
    state updates with a running additive checksum, all arithmetic
    masked to the 32-bit register width."""
    x = seed & _WORD
    acc = 0
    for _ in range(loops):
        x ^= (x << 13) & _WORD
        x ^= x >> 17
        x ^= (x << 5) & _WORD
        acc = (acc + x) & _WORD
    return acc


def compute_burn_test(
    index: int, loops: int = 4096, seed: int = PATTERN_SEED
) -> TestCell:
    """ALU-saturated burn: *loops* xorshift32 rounds with a running
    checksum, verified against the Python mirror of the kernel.  Every
    iteration does real data-dependent arithmetic, so no closed form
    (and no idle fast-forward) applies — an emulator goes faster here
    only by retiring the ALU work itself faster, which is the workload
    the template JIT is benchmarked on."""
    expect = _xorshift_checksum(seed, loops)
    source = f"""\
;; compute burn test {index}: {loops} xorshift32+checksum rounds
.INCLUDE Globals.inc
COMPUTE_LOOPS .EQU {loops}
COMPUTE_SEED .EQU {seed:#x}
COMPUTE_EXPECT .EQU {expect:#x}
_main:
    LOAD d2, COMPUTE_SEED
    LOAD d3, 0
    LOAD d6, COMPUTE_LOOPS
compute_loop:
    SHLI d4, d2, 13
    XOR d2, d2, d4
    SHRI d5, d2, 17
    XOR d2, d2, d5
    SHLI d4, d2, 5
    XOR d2, d2, d4
    ADD d3, d3, d2
    DJNZ d6, compute_loop
    MOV d4, d3
    LOAD d5, COMPUTE_EXPECT
    CALL Base_Check_EQ
    JMP Base_Report_Pass
"""
    return TestCell(
        name=f"TEST_COMPUTE_BURN_{index:03d}",
        source=source,
        description=f"{loops} xorshift32 rounds with checksum",
        testplan_ids=(f"COMPUTE_{index:03d}",),
    )


def timer_irq_test() -> TestCell:
    source = """\
;; timer interrupt test: two ticks must be counted by the global handler
.INCLUDE Globals.inc
_main:
    ;; clear the IRQ counter
    LOAD a11, IRQ_COUNT_ADDR
    LOAD d11, 0
    ST.W [a11], d11
    LOAD d4, IRQ_LINE_TIMER_MASK
    CALL Base_Enable_IRQ
    ;; free-running timer with interrupt enable
    LOAD a4, TIM_RELOAD_ADDR
    LOAD d4, 40
    CALL Base_Init_Register
    LOAD a4, TIM_CTRL_ADDR
    LOAD d4, TIMER_CTRL_IRQ_VALUE
    CALL Base_Init_Register
    ;; wait until the global handler has counted two interrupts
    LOAD d13, POLL_LIMIT
test_spin:
    LOAD d4, [IRQ_COUNT_ADDR]
    CMPI d4, 2
    JGE test_enough
    DJNZ d13, test_spin
    JMP Base_Report_Fail
test_enough:
    ;; stop the timer via the firmware path
    LOAD a4, TIM_CTRL_ADDR
    LOAD d4, 0
    CALL Base_Init_Register
    DI
    JMP Base_Report_Pass
"""
    return TestCell(
        name="TEST_TIMER_IRQ",
        source=source,
        description="timer interrupts are delivered and counted",
        testplan_ids=("TIMER_900",),
    )


def watchdog_service_test() -> TestCell:
    source = """\
;; watchdog: enable with a short timeout and keep it serviced
.INCLUDE Globals.inc
WDT_TEST_CTRL .EQU 1 | (4000 << 8)    ;; EN | timeout=4000 cycles
_main:
    LOAD a4, WDT_CTRL_ADDR
    LOAD d4, WDT_TEST_CTRL
    CALL Base_Init_Register
    LOAD d12, 5                       ;; service five times
test_loop:
    LOAD d4, 20
    CALL Base_Timer_Delay
    CALL Base_WDT_Service
    DJNZ d12, test_loop
    ;; the counter must have been reloaded recently (> 0)
    LOAD d4, [WDT_CNT_ADDR]
    CMPI d4, 0
    JZ Base_Report_Fail
    JMP Base_Report_Pass
"""
    return TestCell(
        name="TEST_WDT_SERVICE",
        source=source,
        description="watchdog stays serviced through delays",
        testplan_ids=("WDT_001",),
    )


def pattern_block_test(index: int, words: int = 16) -> TestCell:
    source = f"""\
;; data-path test {index}: fill two RAM blocks and compare via wrappers
.INCLUDE Globals.inc
BLOCK_WORDS .EQU {words}
_main:
    LOAD a4, SCRATCH_ADDR
    LOAD d4, PATTERN_SEED
    LOAD d5, BLOCK_WORDS
    CALL Base_Fill_Pattern
    LOAD a4, SCRATCH_ADDR + BLOCK_WORDS * 4
    LOAD d4, PATTERN_SEED
    LOAD d5, BLOCK_WORDS
    CALL Base_Fill_Pattern
    LOAD a4, SCRATCH_ADDR
    LOAD a5, SCRATCH_ADDR + BLOCK_WORDS * 4
    LOAD d4, BLOCK_WORDS
    CALL Base_Compare_Block
    MOV d4, d2
    LOAD d5, 0
    CALL Base_Check_EQ
    ;; checksum must be stable and non-zero for this pattern
    LOAD a4, SCRATCH_ADDR
    LOAD d4, BLOCK_WORDS
    CALL Base_Checksum
    CMPI d2, 0
    JZ Base_Report_Fail
    JMP Base_Report_Pass
"""
    return TestCell(
        name=f"TEST_PATTERN_BLOCK_{index:03d}",
        source=source,
        description=f"pattern fill/compare/checksum over {words} words",
        testplan_ids=(f"DATA_{index:03d}",),
    )


def register_rw_test(index: int, register_define: str, pattern: int) -> TestCell:
    source = f"""\
;; register read/write test {index}: {register_define}
.INCLUDE Globals.inc
TEST_PATTERN .EQU {pattern:#x}
_main:
    LOAD a4, {register_define}
    LOAD d4, TEST_PATTERN
    CALL Base_Init_Register
    LOAD d4, [{register_define}]
    LOAD d5, TEST_PATTERN
    CALL Base_Check_EQ
    JMP Base_Report_Pass
"""
    return TestCell(
        name=f"TEST_REG_RW_{index:03d}",
        source=source,
        description=f"walk pattern {pattern:#x} through {register_define}",
        testplan_ids=(f"REGRW_{index:03d}",),
    )


# --------------------------------------------------------------------------
# Environment factories (the module environments of Figure 5)
# --------------------------------------------------------------------------

def make_nvm_environment(
    num_tests: int = 4,
    derivatives: list[Derivative] | None = None,
    targets: list[Target] | None = None,
    global_layer: GlobalLayer | None = None,
    page_overrides: dict[int, int] | None = None,
) -> ModuleTestEnvironment:
    """The paper's NVM module environment with *num_tests* page tests."""
    derivatives = list(derivatives or all_derivatives())
    extras: dict[str, int] = {"PATTERN_SEED": PATTERN_SEED}
    for index in range(1, num_tests + 1):
        page = (page_overrides or {}).get(index, page_for_test(index))
        extras[f"TEST{index}_TARGET_PAGE"] = page
    env = ModuleTestEnvironment(
        "NVM",
        derivatives=derivatives,
        targets=targets,
        extras=extras,
        global_layer=global_layer,
    )
    for index in range(1, num_tests + 1):
        env.add_test(nvm_test_advm(index))
    return env


#: Registers the register-init environment exercises, with test patterns
#: sized to the narrowest derivative's field widths.
REGINIT_TARGETS: list[tuple[str, int]] = [
    ("UART_BAUD_ADDR", 0x0000_1234),
    ("TIM_RELOAD_ADDR", 0x000A_BCDE),
    ("GPIO_OUT_ADDR", 0x0000_A5A5),
    ("INT_EN_ADDR", 0x0000_0003),
]


def make_reginit_environment(
    derivatives: list[Derivative] | None = None,
    targets: list[Target] | None = None,
    global_layer: GlobalLayer | None = None,
) -> ModuleTestEnvironment:
    """The Figure 7 environment: firmware-based register initialisation."""
    extras = {
        f"REG_TEST_VALUE_{i + 1}": value
        for i, (_, value) in enumerate(REGINIT_TARGETS)
    }
    env = ModuleTestEnvironment(
        "REGINIT",
        derivatives=derivatives,
        targets=targets,
        extras=extras,
        global_layer=global_layer,
    )
    for i, (register_define, _) in enumerate(REGINIT_TARGETS):
        env.add_test(reginit_test_advm(i + 1, register_define))
    return env


def make_uart_environment(
    num_tests: int = 3,
    derivatives: list[Derivative] | None = None,
    targets: list[Target] | None = None,
    global_layer: GlobalLayer | None = None,
) -> ModuleTestEnvironment:
    env = ModuleTestEnvironment(
        "UART",
        derivatives=derivatives,
        targets=targets,
        global_layer=global_layer,
    )
    for index in range(1, num_tests + 1):
        env.add_test(uart_loopback_test(index))
    env.add_test(uart_banner_test())
    return env


def make_timer_environment(
    derivatives: list[Derivative] | None = None,
    targets: list[Target] | None = None,
    global_layer: GlobalLayer | None = None,
) -> ModuleTestEnvironment:
    env = ModuleTestEnvironment(
        "TIMER",
        derivatives=derivatives,
        targets=targets,
        global_layer=global_layer,
    )
    env.add_test(timer_delay_test(1, ticks=50))
    env.add_test(timer_delay_test(2, ticks=200))
    env.add_test(timer_irq_test())
    env.add_test(watchdog_service_test())
    return env


def make_delay_environment(
    delay_ticks: tuple[int, ...] = (20_000, 60_000),
    spin_loops: tuple[int, ...] = (50_000, 200_000),
    derivatives: list[Derivative] | None = None,
    targets: list[Target] | None = None,
    global_layer: GlobalLayer | None = None,
) -> ModuleTestEnvironment:
    """Delay-heavy module environment: long one-shot timer delays plus
    pure busy-wait burns.  Wall-clock here is dominated by cycles the
    program only counts, so this is the workload the superblock engine's
    idle fast-forward is benchmarked (and equivalence-tested) on."""
    env = ModuleTestEnvironment(
        "DELAY",
        derivatives=derivatives,
        targets=targets,
        global_layer=global_layer,
    )
    for index, ticks in enumerate(delay_ticks, 1):
        env.add_test(timer_delay_test(index, ticks=ticks))
    for index, loops in enumerate(spin_loops, 1):
        env.add_test(spin_burn_test(index, loops=loops))
    return env


def make_compute_environment(
    compute_loops: tuple[int, ...] = (2_000, 20_000),
    derivatives: list[Derivative] | None = None,
    targets: list[Target] | None = None,
    global_layer: GlobalLayer | None = None,
) -> ModuleTestEnvironment:
    """Compute-heavy module environment: ALU-saturated xorshift burns
    where every retired instruction does data-dependent work.  The
    closed-form warps of the delay environment cannot elide anything
    here, so this is the workload the template JIT is benchmarked (and
    equivalence-tested) on."""
    env = ModuleTestEnvironment(
        "COMPUTE",
        derivatives=derivatives,
        targets=targets,
        global_layer=global_layer,
    )
    for index, loops in enumerate(compute_loops, 1):
        env.add_test(compute_burn_test(index, loops=loops))
    return env


def make_datapath_environment(
    num_tests: int = 2,
    derivatives: list[Derivative] | None = None,
    targets: list[Target] | None = None,
    global_layer: GlobalLayer | None = None,
) -> ModuleTestEnvironment:
    env = ModuleTestEnvironment(
        "DATAPATH",
        derivatives=derivatives,
        targets=targets,
        extras={"PATTERN_SEED": PATTERN_SEED},
        global_layer=global_layer,
    )
    for index in range(1, num_tests + 1):
        env.add_test(pattern_block_test(index, words=8 * index))
    return env


def make_register_environment(
    derivatives: list[Derivative] | None = None,
    targets: list[Target] | None = None,
    global_layer: GlobalLayer | None = None,
) -> ModuleTestEnvironment:
    """The 'control and status register test' class environment the
    paper gives as an example of a test-class (not module) environment."""
    env = ModuleTestEnvironment(
        "REGCHECK",
        derivatives=derivatives,
        targets=targets,
        global_layer=global_layer,
    )
    patterns = [0x0000_A5A5, 0x0000_5A5A, 0x0000_FFFF]
    registers = ["GPIO_OUT_ADDR", "UART_BAUD_ADDR", "TIM_RELOAD_ADDR"]
    index = 1
    for register_define in registers:
        for pattern in patterns:
            if register_define == "TIM_RELOAD_ADDR":
                pattern &= 0x00FF_FFFF  # narrowest timer width
            env.add_test(register_rw_test(index, register_define, pattern))
            index += 1
    return env
