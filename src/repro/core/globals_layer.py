"""The global layer: code the test-environment owner does *not* control.

Figure 4 of the paper shows the shared global layer under all module test
environments: embedded software (see :mod:`repro.soc.embedded`), customer
API functions, "good test methods", trap/interrupt handlers and useful
common functions, plus the global register definitions.

This module provides the two global *libraries* of Figure 5:

- ``Trap_Handlers.asm`` — the trap vector table plus default handlers.
  An unhandled trap fails the test visibly on every platform; the timer
  interrupt handler counts into a well-known RAM word and acknowledges
  the hardware.
- ``Global_Test_Functions.asm`` — shared helpers (pattern fill, block
  compare) that module environments *wrap* via their base functions.

Global-layer code does not include any module's ``Globals.inc`` — it is
upstream of the abstraction layer and owns its own constants.  That is
exactly why tests must not call it directly: these constants and entry
points change without notice (Figure 7's scenario).
"""

from __future__ import annotations

from repro.soc.derivatives import Derivative
from repro.soc.device import FAIL_MAGIC
from repro.soc.memorymap import VECTOR_COUNT
from repro.soc.peripherals.intc import LINE_NVM, LINE_TIMER

#: Vector numbers with dedicated handlers.
TIMER_VECTOR = 8 + LINE_TIMER
NVM_VECTOR = 8 + LINE_NVM


def generate_trap_handlers(derivatives: list[Derivative]) -> str:
    """Render ``Trap_Handlers.asm`` (vector table + default handlers)."""
    sample_map = derivatives[0].memory_map()
    lines: list[str] = [
        ";; Trap_Handlers.asm -- global layer library (not module-owned).",
        ";; Installs the trap vector table and default handlers.",
        "",
        ";; private constants (the global layer owns its own values)",
        f"GL_FAIL_MAGIC .EQU {FAIL_MAGIC:#x}",
        f"GL_RESULT_ADDR .EQU {sample_map.result_address:#x}",
        f"GL_IRQ_COUNT_ADDR .EQU {sample_map.result_address + 4:#x}",
        f"GL_TRAP_ID_ADDR .EQU {sample_map.result_address + 8:#x}",
    ]
    for derivative in derivatives:
        register_map = derivative.register_map()
        lines += [
            f".IFDEF {derivative.predefine}",
            f"GL_GPIO_OUT_ADDR .EQU "
            f"{register_map.register_address('GPIO.GPIO_OUT'):#x}",
            f"GL_GPIO_DIR_ADDR .EQU "
            f"{register_map.register_address('GPIO.GPIO_DIR'):#x}",
            f"GL_TIM_STAT_ADDR .EQU "
            f"{register_map.register_address('TIMER.TIM_STAT'):#x}",
            f"GL_INT_PEND_ADDR .EQU "
            f"{register_map.register_address('INTC.INT_PEND'):#x}",
            ".ENDIF",
        ]
    lines += [
        "",
        ";; ---- vector table at the bottom of ROM ----",
        ".SECTION vectors",
        ".ORG 0",
    ]
    for vector in range(VECTOR_COUNT):
        if vector == 0:
            lines.append(".WORD 0                      ;; 0: reset (unused)")
        elif vector == TIMER_VECTOR:
            lines.append(
                f".WORD GL_IRQ_Timer_Handler   ;; {vector}: timer interrupt"
            )
        elif vector == NVM_VECTOR:
            lines.append(
                f".WORD GL_IRQ_Nvm_Handler     ;; {vector}: NVM-done interrupt"
            )
        else:
            lines.append(
                f".WORD GL_Default_Trap_Handler ;; {vector}"
            )
    lines += [
        "",
        ".SECTION text",
        ";; Any unexpected trap is a test failure on every platform.",
        "GL_Default_Trap_Handler:",
        "    LOAD d0, GL_FAIL_MAGIC",
        "    LOAD a10, GL_RESULT_ADDR",
        "    ST.W [a10], d0",
        "    LOAD a10, GL_GPIO_DIR_ADDR",
        "    LOAD d1, 3",
        "    ST.W [a10], d1",
        "    LOAD a10, GL_GPIO_OUT_ADDR",
        "    LOAD d1, 1                  ;; done=1 pass=0",
        "    ST.W [a10], d1",
        "    HALT",
        "",
        ";; Timer tick: count it, acknowledge device + controller, resume.",
        "GL_IRQ_Timer_Handler:",
        "    PUSH d6",
        "    PUSH a6",
        "    LOAD a6, GL_TIM_STAT_ADDR",
        "    LOAD d6, 1",
        "    ST.W [a6], d6               ;; W1C timer OVF",
        "    LOAD a6, GL_INT_PEND_ADDR",
        f"    LOAD d6, {1 << LINE_TIMER:#x}",
        "    ST.W [a6], d6               ;; W1C pending line",
        "    LOAD a6, GL_IRQ_COUNT_ADDR",
        "    LD.W d6, [a6]",
        "    ADDI d6, d6, 1",
        "    ST.W [a6], d6",
        "    POP a6",
        "    POP d6",
        "    RETI",
        "",
        ";; NVM operation complete: count it and acknowledge.",
        "GL_IRQ_Nvm_Handler:",
        "    PUSH d6",
        "    PUSH a6",
        "    LOAD a6, GL_INT_PEND_ADDR",
        f"    LOAD d6, {1 << LINE_NVM:#x}",
        "    ST.W [a6], d6",
        "    LOAD a6, GL_IRQ_COUNT_ADDR",
        "    LD.W d6, [a6]",
        "    ADDI d6, d6, 1",
        "    ST.W [a6], d6",
        "    POP a6",
        "    POP d6",
        "    RETI",
        "",
    ]
    return "\n".join(lines)


GLOBAL_TEST_FUNCTIONS = """\
;; Global_Test_Functions.asm -- shared helper library (global layer).
;; Module environments wrap these via Base_Functions (never call direct).

;; Fill d5 words at a4 with a rolling pattern seeded by d4.
Global_Fill_Pattern:
Global_Fill_Pattern_loop:
    ST.W [a4], d4
    ADDI d4, d4, 0x0101
    ADDA a4, a4, 4
    DJNZ d5, Global_Fill_Pattern_loop
    RETURN

;; Compare d4 words at a4 vs a5; d2 = 0 equal / 1 different.
Global_Compare_Block:
Global_Compare_Block_loop:
    LD.W d2, [a4]
    LD.W d3, [a5]
    CMP d2, d3
    JNZ Global_Compare_Block_diff
    ADDA a4, a4, 4
    ADDA a5, a5, 4
    DJNZ d4, Global_Compare_Block_loop
    LOAD d2, 0
    RETURN
Global_Compare_Block_diff:
    LOAD d2, 1
    RETURN
"""


def generate_global_test_functions() -> str:
    return GLOBAL_TEST_FUNCTIONS
