"""Abstraction-layer violation checking — the paper's Figure 2.

Figure 2 shows the "abuse" of the module test environment: tests linking
global-layer code directly instead of going through the abstraction
layer.  The paper warns that doing so forfeits all protection from
change.  This checker detects the abuse mechanically, from three
evidence sources:

1. **include records** — the assembler logs every ``.INCLUDE``; a test
   pulling in anything other than its abstraction layer is flagged;
2. **unresolved externals** — a test object whose externs name
   global-layer entry points (``ES_*``, ``Global_*``) bypassed the
   ``Base_*`` wrappers;
3. **hardwired values** — source literals that match special-function-
   register addresses or derivative-specific field geometry, the
   "previously used a hardwired value" smell the Globals.inc exists to
   remove.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.assembler.objectfile import ObjectFile
from repro.core.environment import (
    BASE_FUNCTIONS_FILENAME,
    GLOBALS_FILENAME,
    ModuleTestEnvironment,
)
from repro.core.targets import Target
from repro.soc.derivatives import Derivative

#: Symbol prefixes owned by the global layer (never callable from tests).
GLOBAL_LAYER_PREFIXES = ("ES_", "Global_", "GL_")
#: Symbol prefixes the abstraction layer exports to tests.
ABSTRACTION_PREFIXES = ("Base_",)

SFR_BASE = 0xF000_0000
SFR_END = 0xF001_0000


class ViolationKind(enum.Enum):
    DIRECT_INCLUDE = "direct global-layer include"
    DIRECT_CALL = "direct global-layer call"
    HARDWIRED_ADDRESS = "hardwired SFR address"


@dataclass(frozen=True)
class Violation:
    kind: ViolationKind
    test_name: str
    detail: str

    def __str__(self) -> str:
        return f"{self.test_name}: {self.kind.value}: {self.detail}"


#: Files a test cell is allowed to include (its abstraction layer).
ALLOWED_INCLUDES = frozenset({GLOBALS_FILENAME})


def check_includes(
    test_name: str, test_object: ObjectFile
) -> list[Violation]:
    """Rule 1: tests include only their abstraction layer."""
    violations = []
    # First entry is the test source itself.
    for included in test_object.included_files[1:]:
        short = included.rsplit("/", 1)[-1]
        if short not in ALLOWED_INCLUDES:
            violations.append(
                Violation(
                    ViolationKind.DIRECT_INCLUDE,
                    test_name,
                    f"includes {included!r} (allowed: "
                    f"{sorted(ALLOWED_INCLUDES)})",
                )
            )
    return violations


def check_externs(test_name: str, test_object: ObjectFile) -> list[Violation]:
    """Rule 2: unresolved externals must be Base_* wrappers."""
    violations = []
    for symbol in sorted(test_object.undefined_symbols()):
        if symbol.startswith(ABSTRACTION_PREFIXES):
            continue
        if symbol.startswith(GLOBAL_LAYER_PREFIXES):
            violations.append(
                Violation(
                    ViolationKind.DIRECT_CALL,
                    test_name,
                    f"references global-layer symbol {symbol!r} directly "
                    "(wrap it in Base_Functions instead)",
                )
            )
    return violations


_HEX_LITERAL = re.compile(r"0[xX][0-9a-fA-F_]+")


def check_hardwired_addresses(test_name: str, source: str) -> list[Violation]:
    """Rule 3: no literal SFR addresses in test sources."""
    violations = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        code = line.split(";")[0]
        for match in _HEX_LITERAL.finditer(code):
            value = int(match.group(0).replace("_", ""), 16)
            if SFR_BASE <= value < SFR_END:
                violations.append(
                    Violation(
                        ViolationKind.HARDWIRED_ADDRESS,
                        test_name,
                        f"line {line_number}: literal {match.group(0)} is an "
                        "SFR address; use a Globals.inc define",
                    )
                )
    return violations


def check_cell(
    test_name: str, source: str, test_object: ObjectFile
) -> list[Violation]:
    """All rules for one assembled test cell."""
    return (
        check_includes(test_name, test_object)
        + check_externs(test_name, test_object)
        + check_hardwired_addresses(test_name, source)
    )


def check_environment(
    env: ModuleTestEnvironment,
    derivative: Derivative,
    tgt: Target,
) -> list[Violation]:
    """Assemble every cell of *env* and run all checks."""
    violations: list[Violation] = []
    for cell in env.cells.values():
        test_object = env.assemble_cell(cell.name, derivative, tgt)
        violations.extend(check_cell(cell.name, cell.source, test_object))
    return violations
