"""Derivative comparison reports: what will this port involve?

Before porting, a verification lead wants the change inventory between
the current derivative and the new one — precisely the §4 change classes
the abstraction layer will have to absorb.  This module computes that
inventory mechanically from the derivative catalogue and register maps,
and classifies each difference by where the ADVM absorbs it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.soc.derivatives import Derivative


class AbsorbedBy(enum.Enum):
    """Which abstraction-layer artefact soaks up a change class."""

    GLOBAL_DEFINES = "Globals.inc"
    BASE_FUNCTIONS = "Base_Functions.asm"


@dataclass(frozen=True)
class DerivativeChange:
    """One difference between two derivatives."""

    category: str
    detail: str
    absorbed_by: AbsorbedBy

    def __str__(self) -> str:
        return f"[{self.category}] {self.detail} -> {self.absorbed_by.value}"


def compare_derivatives(
    old: Derivative, new: Derivative
) -> list[DerivativeChange]:
    """Inventory of changes a port from *old* to *new* must absorb."""
    changes: list[DerivativeChange] = []

    if (old.page_field_pos, old.page_field_width) != (
        new.page_field_pos,
        new.page_field_width,
    ):
        changes.append(
            DerivativeChange(
                "bit-field geometry",
                f"NVM PAGE field moves from pos={old.page_field_pos} "
                f"width={old.page_field_width} to pos={new.page_field_pos} "
                f"width={new.page_field_width} (Figure 6)",
                AbsorbedBy.GLOBAL_DEFINES,
            )
        )
    if old.nvm_pages != new.nvm_pages:
        changes.append(
            DerivativeChange(
                "capacity",
                f"NVM pages {old.nvm_pages} -> {new.nvm_pages}",
                AbsorbedBy.GLOBAL_DEFINES,
            )
        )
    if old.nvm_ctrl_name != new.nvm_ctrl_name:
        changes.append(
            DerivativeChange(
                "register rename",
                f"{old.nvm_ctrl_name!r} renamed to {new.nvm_ctrl_name!r} "
                "(re-mapped to the canonical define)",
                AbsorbedBy.GLOBAL_DEFINES,
            )
        )

    old_map = old.register_map().all_register_addresses()
    new_map = new.register_map().all_register_addresses()
    moved = sorted(
        name
        for name in old_map
        if name in new_map and old_map[name] != new_map[name]
    )
    for name in moved:
        changes.append(
            DerivativeChange(
                "peripheral re-base",
                f"{name} moves {old_map[name]:#010x} -> "
                f"{new_map[name]:#010x}",
                AbsorbedBy.GLOBAL_DEFINES,
            )
        )

    if old.timer_counter_width != new.timer_counter_width:
        changes.append(
            DerivativeChange(
                "counter width",
                f"timer counter {old.timer_counter_width} -> "
                f"{new.timer_counter_width} bits",
                AbsorbedBy.GLOBAL_DEFINES,
            )
        )
    if old.wdt_service_key != new.wdt_service_key:
        changes.append(
            DerivativeChange(
                "protocol constant",
                f"watchdog service key {old.wdt_service_key:#x} -> "
                f"{new.wdt_service_key:#x}",
                AbsorbedBy.GLOBAL_DEFINES,
            )
        )
    if old.es_version != new.es_version:
        old_abi, new_abi = old.es_abi, new.es_abi
        detail = (
            f"embedded software v{old.es_version} -> v{new.es_version}: "
            f"{old_abi.init_register_symbol!r} -> "
            f"{new_abi.init_register_symbol!r}, inputs "
            f"({old_abi.init_addr_reg}, {old_abi.init_value_reg}) -> "
            f"({new_abi.init_addr_reg}, {new_abi.init_value_reg}) "
            "(Figure 7)"
        )
        changes.append(
            DerivativeChange(
                "firmware rewrite", detail, AbsorbedBy.BASE_FUNCTIONS
            )
        )
    return changes


def port_plan(old: Derivative, new: Derivative) -> str:
    """Human-readable port plan (what F6/F7 will do to which file)."""
    changes = compare_derivatives(old, new)
    lines = [f"port plan: {old.name} -> {new.name}"]
    if not changes:
        lines.append("  no catalogue-level changes; port is a no-op")
        return "\n".join(lines)
    by_artifact: dict[AbsorbedBy, list[DerivativeChange]] = {}
    for change in changes:
        by_artifact.setdefault(change.absorbed_by, []).append(change)
    for artifact, items in by_artifact.items():
        lines.append(f"  {artifact.value}: {len(items)} change(s)")
        for change in items:
            lines.append(f"    - [{change.category}] {change.detail}")
    lines.append(
        f"  test layer: 0 changes ({len(changes)} change(s) absorbed "
        "by the abstraction layer)"
    )
    return "\n".join(lines)
