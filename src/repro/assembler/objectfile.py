"""Relocatable object format produced by the assembler.

An :class:`ObjectFile` is the unit the linker consumes: named sections of
raw bytes, exported symbols (labels) at section-relative offsets,
relocation records for 32-bit literal words that reference symbols the
assembler could not resolve locally, and bookkeeping the ADVM layer needs
(the set of files each object pulled in via ``.INCLUDE`` — the
abstraction-violation checker of the paper's Figure 2 is built on it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assembler.errors import LinkError, SourceLocation, UNKNOWN_LOCATION

TEXT_SECTION = "text"
DATA_SECTION = "data"
VECTOR_SECTION = "vectors"


@dataclass(frozen=True)
class Symbol:
    """An exported label: section-relative until the object is linked."""

    name: str
    section: str
    offset: int
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class Relocation:
    """Patch request: write ``resolve(symbol) + addend`` into the 32-bit
    word at ``section[offset]`` at link time."""

    section: str
    offset: int
    symbol: str
    addend: int = 0
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class Section:
    """One contiguous chunk of assembled output."""

    name: str
    data: bytearray = field(default_factory=bytearray)
    #: Absolute base address requested via ``.ORG``; ``None`` floats and is
    #: placed by the linker according to the memory map.
    org: int | None = None

    @property
    def size(self) -> int:
        return len(self.data)

    def emit_bytes(self, payload: bytes) -> int:
        """Append *payload*; returns the offset it was written at."""
        offset = len(self.data)
        self.data.extend(payload)
        return offset

    def emit_word(self, word: int) -> int:
        return self.emit_bytes(int(word & 0xFFFF_FFFF).to_bytes(4, "little"))

    def align(self, boundary: int, fill: int = 0) -> None:
        remainder = len(self.data) % boundary
        if remainder:
            self.data.extend(bytes([fill]) * (boundary - remainder))

    def patch_word(self, offset: int, word: int) -> None:
        self.data[offset : offset + 4] = int(word & 0xFFFF_FFFF).to_bytes(
            4, "little"
        )

    def read_word(self, offset: int) -> int:
        return int.from_bytes(self.data[offset : offset + 4], "little")


@dataclass
class ObjectFile:
    """Assembler output for one translation unit."""

    name: str
    sections: dict[str, Section] = field(default_factory=dict)
    symbols: dict[str, Symbol] = field(default_factory=dict)
    relocations: list[Relocation] = field(default_factory=list)
    externs: set[str] = field(default_factory=set)
    #: Every file the unit read, root source first, then ``.INCLUDE``s in
    #: encounter order.  Consumed by the ADVM violation checker.
    included_files: list[str] = field(default_factory=list)
    #: Values of ``.EQU``/``.DEFINE`` symbols seen while assembling, kept
    #: for listings and for ADVM coverage of define usage.
    define_snapshot: dict[str, int] = field(default_factory=dict)

    def section(self, name: str) -> Section:
        if name not in self.sections:
            self.sections[name] = Section(name)
        return self.sections[name]

    def add_symbol(
        self,
        name: str,
        section: str,
        offset: int,
        location: SourceLocation = UNKNOWN_LOCATION,
    ) -> None:
        if name in self.symbols:
            raise LinkError(
                f"duplicate label {name!r} in object {self.name!r} "
                f"(first defined at {self.symbols[name].location})",
                location,
            )
        self.symbols[name] = Symbol(name, section, offset, location)

    def add_relocation(
        self,
        section: str,
        offset: int,
        symbol: str,
        addend: int = 0,
        location: SourceLocation = UNKNOWN_LOCATION,
    ) -> None:
        self.relocations.append(
            Relocation(section, offset, symbol, addend, location)
        )
        if symbol not in self.symbols:
            self.externs.add(symbol)

    @property
    def total_size(self) -> int:
        return sum(s.size for s in self.sections.values())

    def undefined_symbols(self) -> set[str]:
        """Symbols referenced but not defined in this object."""
        return {r.symbol for r in self.relocations if r.symbol not in self.symbols}
