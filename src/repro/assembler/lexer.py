"""Line lexer for SC88 assembler source.

The assembler is line-oriented: each source line is tokenised independently
into a list of :class:`Token`.  Comments start with ``;`` (the paper uses
``;;``) and run to end of line.  Number literals accept decimal, ``0x``
hexadecimal, ``0b`` binary, ``0o`` octal and ``'c'`` character forms.
Identifiers may contain dots (``LD.W``) so instruction-variant mnemonics
lex as single tokens; a leading dot marks a directive (``.INCLUDE``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.assembler.errors import LexError, SourceLocation


class TokenKind(enum.Enum):
    IDENT = "identifier"
    DIRECTIVE = "directive"
    NUMBER = "number"
    STRING = "string"
    PUNCT = "punctuation"
    EOL = "end of line"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: int | None = None  # numeric value for NUMBER tokens

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.text or self.kind.value


#: Multi-character operators, longest first so maximal munch works.
_MULTI_PUNCT = ("<<", ">>", "==", "!=", "<=", ">=", "&&", "||")
_SINGLE_PUNCT = set(",:[]()+-*/%&|^~!<>=")

_IDENT_START = set("abcdefghijklmnopqrstuvwxyz" "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789.")


def _lex_number(text: str, pos: int, location: SourceLocation) -> tuple[Token, int]:
    start = pos
    if text.startswith(("0x", "0X"), pos):
        pos += 2
        digits = "0123456789abcdefABCDEF"
        base = 16
    elif text.startswith(("0b", "0B"), pos):
        pos += 2
        digits = "01"
        base = 2
    elif text.startswith(("0o", "0O"), pos):
        pos += 2
        digits = "01234567"
        base = 8
    else:
        digits = "0123456789"
        base = 10
    num_start = pos
    while pos < len(text) and (text[pos] in digits or text[pos] == "_"):
        pos += 1
    literal = text[num_start:pos].replace("_", "")
    if not literal:
        raise LexError(f"malformed number literal at column {start + 1}", location)
    # An identifier character immediately after a number is a malformed
    # token (e.g. ``0x5G``), not two tokens.
    if pos < len(text) and text[pos] in _IDENT_CONT:
        raise LexError(
            f"malformed number literal {text[start:pos + 1]!r}", location
        )
    return Token(TokenKind.NUMBER, text[start:pos], int(literal, base)), pos


def _lex_char(text: str, pos: int, location: SourceLocation) -> tuple[Token, int]:
    # 'c' or escaped '\n' style character literal -> NUMBER token.
    end = pos + 2
    if end < len(text) and text[pos + 1] == "\\":
        end += 1
    if end >= len(text) or text[end] != "'":
        raise LexError("unterminated character literal", location)
    body = text[pos + 1 : end]
    if body.startswith("\\"):
        escapes = {"n": "\n", "t": "\t", "0": "\0", "r": "\r", "\\": "\\", "'": "'"}
        if body[1] not in escapes:
            raise LexError(f"unknown escape {body!r}", location)
        char = escapes[body[1]]
    else:
        char = body
    return Token(TokenKind.NUMBER, text[pos : end + 1], ord(char)), end + 1


def _lex_string(text: str, pos: int, location: SourceLocation) -> tuple[Token, int]:
    end = pos + 1
    out: list[str] = []
    while end < len(text) and text[end] != '"':
        if text[end] == "\\" and end + 1 < len(text):
            escapes = {"n": "\n", "t": "\t", "0": "\0", "r": "\r", "\\": "\\", '"': '"'}
            nxt = text[end + 1]
            if nxt not in escapes:
                raise LexError(f"unknown escape \\{nxt}", location)
            out.append(escapes[nxt])
            end += 2
        else:
            out.append(text[end])
            end += 1
    if end >= len(text):
        raise LexError("unterminated string literal", location)
    return Token(TokenKind.STRING, "".join(out)), end + 1


def tokenize_line(line: str, location: SourceLocation) -> list[Token]:
    """Tokenise one source line; the trailing EOL token is always present."""
    tokens: list[Token] = []
    pos = 0
    length = len(line)
    while pos < length:
        ch = line[pos]
        if ch in " \t":
            pos += 1
            continue
        if ch == ";":
            break  # comment to end of line
        if ch == '"':
            token, pos = _lex_string(line, pos, location)
            tokens.append(token)
            continue
        if ch == "'":
            token, pos = _lex_char(line, pos, location)
            tokens.append(token)
            continue
        if ch.isdigit():
            token, pos = _lex_number(line, pos, location)
            tokens.append(token)
            continue
        if ch == "." and pos + 1 < length and line[pos + 1] in _IDENT_START:
            end = pos + 1
            while end < length and line[end] in _IDENT_CONT:
                end += 1
            tokens.append(Token(TokenKind.DIRECTIVE, line[pos:end]))
            pos = end
            continue
        if ch in _IDENT_START:
            end = pos
            while end < length and line[end] in _IDENT_CONT:
                end += 1
            tokens.append(Token(TokenKind.IDENT, line[pos:end]))
            pos = end
            continue
        matched = False
        for op in _MULTI_PUNCT:
            if line.startswith(op, pos):
                tokens.append(Token(TokenKind.PUNCT, op))
                pos += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch))
            pos += 1
            continue
        raise LexError(f"stray character {ch!r} at column {pos + 1}", location)
    tokens.append(Token(TokenKind.EOL, ""))
    return tokens
