"""Constant-expression evaluation for assembler operands and directives.

Expressions appear in ``.EQU`` values, ``.IF`` conditions, immediates,
``.WORD`` data and absolute operands.  They evaluate over 64-bit Python
ints with C-like operator precedence.

A term may be a symbol that is *not yet known* (a label defined in another
object file, e.g. the paper's ``ES_Init_Register`` which lives in the
embedded-software ROM).  Such expressions evaluate to a **symbolic** result
``symbol + addend`` and may only be used where the instruction set carries a
full 32-bit literal word, because that is the only thing the linker can
relocate.  Callers enforce that restriction via :meth:`ExprResult.require_absolute`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.assembler.errors import ExpressionError, SourceLocation
from repro.assembler.lexer import Token, TokenKind

#: Resolver contract: return the symbol's value, or ``None`` when the symbol
#: is external/not yet defined (making the expression symbolic), or raise
#: :class:`~repro.assembler.errors.SymbolError` for names that are illegal.
Resolver = Callable[[str], "int | None"]


@dataclass(frozen=True)
class ExprResult:
    """Evaluated expression: absolute value, or ``symbol + value``."""

    value: int
    symbol: str | None = None

    @property
    def is_absolute(self) -> bool:
        return self.symbol is None

    def require_absolute(self, what: str, location: SourceLocation) -> int:
        if self.symbol is not None:
            raise ExpressionError(
                f"{what} must be an absolute expression, but references "
                f"unresolved symbol {self.symbol!r} (only 32-bit literal "
                "operands can be relocated)",
                location,
            )
        return self.value


class _Parser:
    """Recursive-descent evaluator over a token slice."""

    def __init__(
        self,
        tokens: list[Token],
        resolver: Resolver,
        location: SourceLocation,
    ):
        self.tokens = tokens
        self.pos = 0
        self.resolver = resolver
        self.location = location

    # -- token helpers ----------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOL:
            self.pos += 1
        return token

    def accept_punct(self, text: str) -> bool:
        if self.peek().is_punct(text):
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> None:
        if not self.accept_punct(text):
            raise ExpressionError(
                f"expected {text!r}, found {self.peek()!s}", self.location
            )

    # -- grammar ------------------------------------------------------------
    # Levels from loosest to tightest binding.
    _BINARY_LEVELS: list[tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse(self) -> ExprResult:
        return self._binary(0)

    def _binary(self, level: int) -> ExprResult:
        if level == len(self._BINARY_LEVELS):
            return self._unary()
        result = self._binary(level + 1)
        ops = self._BINARY_LEVELS[level]
        while self.peek().kind is TokenKind.PUNCT and self.peek().text in ops:
            op = self.advance().text
            rhs = self._binary(level + 1)
            result = self._apply(op, result, rhs)
        return result

    def _unary(self) -> ExprResult:
        token = self.peek()
        if token.is_punct("-"):
            self.advance()
            operand = self._unary()
            if operand.symbol is not None:
                raise ExpressionError(
                    "cannot negate a symbolic expression", self.location
                )
            return ExprResult(-operand.value)
        if token.is_punct("~"):
            self.advance()
            operand = self._unary()
            if operand.symbol is not None:
                raise ExpressionError(
                    "cannot complement a symbolic expression", self.location
                )
            return ExprResult(~operand.value)
        if token.is_punct("!"):
            self.advance()
            operand = self._unary()
            if operand.symbol is not None:
                raise ExpressionError(
                    "cannot logically negate a symbolic expression",
                    self.location,
                )
            return ExprResult(int(operand.value == 0))
        if token.is_punct("+"):
            self.advance()
            return self._unary()
        return self._primary()

    def _primary(self) -> ExprResult:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            assert token.value is not None
            return ExprResult(token.value)
        if token.kind is TokenKind.IDENT:
            self.advance()
            resolved = self.resolver(token.text)
            if resolved is None:
                return ExprResult(0, symbol=token.text)
            return ExprResult(resolved)
        if token.is_punct("("):
            self.advance()
            inner = self._binary(0)
            self.expect_punct(")")
            return inner
        raise ExpressionError(
            f"expected expression, found {token!s}", self.location
        )

    def _apply(self, op: str, lhs: ExprResult, rhs: ExprResult) -> ExprResult:
        # Symbolic arithmetic: only symbol +/- constant survives, because
        # that is the only shape a relocation entry can carry.
        if lhs.symbol is not None or rhs.symbol is not None:
            if op == "+" and lhs.symbol is not None and rhs.symbol is None:
                return ExprResult(lhs.value + rhs.value, lhs.symbol)
            if op == "+" and rhs.symbol is not None and lhs.symbol is None:
                return ExprResult(lhs.value + rhs.value, rhs.symbol)
            if op == "-" and lhs.symbol is not None and rhs.symbol is None:
                return ExprResult(lhs.value - rhs.value, lhs.symbol)
            raise ExpressionError(
                f"operator {op!r} cannot be applied to a symbolic expression "
                "(only <symbol> + <const> and <symbol> - <const> relocate)",
                self.location,
            )
        a, b = lhs.value, rhs.value
        if op in ("/", "%") and b == 0:
            raise ExpressionError("division by zero in expression", self.location)
        table: dict[str, Callable[[int, int], int]] = {
            "||": lambda x, y: int(bool(x) or bool(y)),
            "&&": lambda x, y: int(bool(x) and bool(y)),
            "|": lambda x, y: x | y,
            "^": lambda x, y: x ^ y,
            "&": lambda x, y: x & y,
            "==": lambda x, y: int(x == y),
            "!=": lambda x, y: int(x != y),
            "<": lambda x, y: int(x < y),
            ">": lambda x, y: int(x > y),
            "<=": lambda x, y: int(x <= y),
            ">=": lambda x, y: int(x >= y),
            "<<": lambda x, y: x << y,
            ">>": lambda x, y: x >> y,
            "+": lambda x, y: x + y,
            "-": lambda x, y: x - y,
            "*": lambda x, y: x * y,
            "/": lambda x, y: int(x / y) if (x < 0) != (y < 0) else x // y,
            "%": lambda x, y: x - y * (int(x / y) if (x < 0) != (y < 0) else x // y),
        }
        return ExprResult(table[op](a, b))


def evaluate(
    tokens: list[Token],
    resolver: Resolver,
    location: SourceLocation,
) -> tuple[ExprResult, int]:
    """Evaluate an expression starting at ``tokens[0]``.

    Returns the result and the number of tokens consumed, so operand
    parsers can continue after the expression (e.g. at a ``,``).
    """
    parser = _Parser(tokens, resolver, location)
    result = parser.parse()
    return result, parser.pos


def evaluate_all(
    tokens: list[Token],
    resolver: Resolver,
    location: SourceLocation,
) -> ExprResult:
    """Evaluate an expression that must consume every token before EOL."""
    result, consumed = evaluate(tokens, resolver, location)
    if tokens[consumed].kind is not TokenKind.EOL:
        raise ExpressionError(
            f"unexpected trailing token {tokens[consumed]!s} after expression",
            location,
        )
    return result
