"""Diagnostics for the SC88 assembler and linker.

Every error carries a :class:`SourceLocation` so that a failing test-cell
build points at the exact file and line, including through ``.INCLUDE``
chains and macro expansions — the ADVM workflow assembles many small test
cells and the team debugging a regression needs real locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SourceLocation:
    """A position in an assembler source file."""

    filename: str
    line: int
    #: Chain of (filename, line) include/macro frames, outermost first.
    context: tuple[tuple[str, int], ...] = ()

    def __str__(self) -> str:
        base = f"{self.filename}:{self.line}"
        if not self.context:
            return base
        frames = " <- ".join(f"{f}:{ln}" for f, ln in self.context)
        return f"{base} (via {frames})"

    def nested(self, filename: str, line: int) -> "SourceLocation":
        """Location for a line pulled in from *filename* via this one."""
        return SourceLocation(
            filename=filename,
            line=line,
            context=self.context + ((self.filename, self.line),),
        )


UNKNOWN_LOCATION = SourceLocation("<unknown>", 0)


class AssemblerError(Exception):
    """Base class for all assembler/linker diagnostics."""

    def __init__(self, message: str, location: SourceLocation = UNKNOWN_LOCATION):
        super().__init__(f"{location}: {message}")
        self.message = message
        self.location = location


class LexError(AssemblerError):
    """Malformed token (bad number, unterminated string, stray character)."""


class ParseError(AssemblerError):
    """Malformed statement (bad operands, unknown mnemonic/directive)."""


class SymbolError(AssemblerError):
    """Undefined, redefined, or ill-typed symbol."""


class ExpressionError(AssemblerError):
    """Expression cannot be evaluated (syntax, division by zero, ...)."""


class DirectiveError(AssemblerError):
    """Misused directive (unbalanced .IF/.ENDIF, bad .ORG, ...)."""


class IncludeError(AssemblerError):
    """Missing include file or include cycle."""


class EncodingError(AssemblerError):
    """Operand value does not fit its encoding field."""


class LinkError(AssemblerError):
    """Cross-object resolution failure (duplicate/undefined symbols,
    overlapping sections, image does not fit its memory region)."""


@dataclass
class Diagnostics:
    """Collector used when callers want all errors, not just the first."""

    errors: list[AssemblerError] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def error(self, exc: AssemblerError) -> None:
        self.errors.append(exc)

    def warn(self, message: str, location: SourceLocation = UNKNOWN_LOCATION) -> None:
        self.warnings.append(f"{location}: {message}")

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_first(self) -> None:
        if self.errors:
            raise self.errors[0]

    def summary(self) -> str:
        lines = [str(e) for e in self.errors]
        lines += [f"warning: {w}" for w in self.warnings]
        return "\n".join(lines)
