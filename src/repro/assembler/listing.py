"""Listing and disassembly output.

Verification teams read listings when a regression fails on a platform
with poor visibility (the paper's accelerator/bondout targets), so the
assembler keeps per-statement records and this module renders them, and
can disassemble raw words back to mnemonics for trace annotation.
"""

from __future__ import annotations

from repro.assembler.assembler import ListingRecord
from repro.isa.encoding import Format, decode_word, opcode_of
from repro.isa.instructions import lookup_opcode


def render_listing(records: list[ListingRecord], title: str = "") -> str:
    """Render assembler listing records as a classic columned listing."""
    lines: list[str] = []
    if title:
        lines.append(f"; listing: {title}")
    current_section: str | None = None
    for record in records:
        if record.section != current_section:
            lines.append(f"; section {record.section}")
            current_section = record.section
        hex_bytes = record.data.hex()
        grouped = " ".join(
            hex_bytes[i : i + 8] for i in range(0, min(len(hex_bytes), 32), 8)
        )
        if len(hex_bytes) > 32:
            grouped += " ..."
        lines.append(f"{record.offset:08x}  {grouped:<40} {record.source}")
    return "\n".join(lines)


def disassemble_word(word: int, literal: int | None = None) -> str:
    """Best-effort disassembly of one (or one-and-a-literal) word."""
    try:
        spec = lookup_opcode(opcode_of(word))
    except KeyError:
        return f".WORD {word:#010x}"
    fields = decode_word(spec.fmt, word)
    parts: list[str] = []
    for kind, slot in zip(spec.operands, spec.slots):
        if slot == "r1":
            prefix = "d" if kind.name == "DREG" else "a"
            parts.append(f"{prefix}{fields['r1']}")
        elif slot == "r2":
            prefix = "d" if kind.name == "DREG" else "a"
            parts.append(f"{prefix}{fields['r2']}")
        elif slot == "r3":
            parts.append(f"d{fields['r3']}")
        elif slot == "mem":
            offset = fields.get("imm16", 0)
            parts.append(f"[a{fields['r2']}+{offset:#x}]")
        elif slot == "imm16":
            parts.append(f"{fields['imm16']:#x}")
        elif slot == "imm8":
            parts.append(f"{fields['imm8']:#x}")
        elif slot == "pos":
            parts.append(str(fields["pos"]))
        elif slot == "width":
            parts.append(str(fields["width"]))
        elif slot == "literal":
            if kind.name == "MEMABS":
                parts.append(
                    f"[{literal:#010x}]" if literal is not None else "[?]"
                )
            else:
                parts.append(
                    f"{literal:#010x}" if literal is not None else "?"
                )
    return f"{spec.mnemonic} " + ", ".join(parts) if parts else spec.mnemonic


def instruction_length(word: int) -> int:
    """Number of 32-bit words this instruction occupies (1 or 2)."""
    try:
        spec = lookup_opcode(opcode_of(word))
    except KeyError:
        return 1
    return spec.words


def disassemble_range(words: list[int], base: int = 0) -> list[str]:
    """Disassemble a contiguous word sequence with addresses."""
    out: list[str] = []
    index = 0
    while index < len(words):
        word = words[index]
        length = instruction_length(word)
        literal = (
            words[index + 1] if length == 2 and index + 1 < len(words) else None
        )
        address = base + 4 * index
        out.append(f"{address:08x}: {disassemble_word(word, literal)}")
        index += length
    return out


_FORMAT_NAMES = {fmt.name: fmt for fmt in Format}
