"""SC88 assembler toolchain.

A full two-pass macro assembler and linker for the SC88 ISA, supporting the
directive set the ADVM paper's code examples rely on: ``.INCLUDE`` (the
test layer pulls in ``Globals.inc``), ``NAME .EQU expr`` (global defines),
``.DEFINE CallAddr A12`` (register aliases), conditional assembly keyed on
injected predefines (derivative/target selection) and macros.

Typical use::

    asm = Assembler(include_paths=["Abstraction_Layer"],
                    predefines={"DERIVATIVE_SC88A": 1})
    obj = asm.assemble_file("TEST_NVM_PAGE/test.asm")
    image = Linker(text_base=0x100, data_base=0x10000000).link(
        [obj, base_functions_obj, embedded_software_obj])
"""

from repro.assembler.assembler import Assembler, ListingRecord
from repro.assembler.errors import (
    AssemblerError,
    Diagnostics,
    DirectiveError,
    EncodingError,
    ExpressionError,
    IncludeError,
    LexError,
    LinkError,
    ParseError,
    SourceLocation,
    SymbolError,
)
from repro.assembler.lexer import Token, TokenKind, tokenize_line
from repro.assembler.linker import (
    Linker,
    MemoryImage,
    PlacedSection,
    Region,
)
from repro.assembler.listing import (
    disassemble_range,
    disassemble_word,
    render_listing,
)
from repro.assembler.objectfile import (
    ObjectFile,
    Relocation,
    Section,
    Symbol,
)
from repro.assembler.preprocessor import (
    FileProvider,
    FilesystemProvider,
    InMemoryProvider,
    SourceStream,
)

__all__ = [
    "Assembler",
    "AssemblerError",
    "Diagnostics",
    "DirectiveError",
    "EncodingError",
    "ExpressionError",
    "FileProvider",
    "FilesystemProvider",
    "IncludeError",
    "InMemoryProvider",
    "LexError",
    "LinkError",
    "Linker",
    "ListingRecord",
    "MemoryImage",
    "ObjectFile",
    "ParseError",
    "PlacedSection",
    "Region",
    "Relocation",
    "Section",
    "SourceLocation",
    "SourceStream",
    "Symbol",
    "SymbolError",
    "Token",
    "TokenKind",
    "disassemble_range",
    "disassemble_word",
    "render_listing",
    "tokenize_line",
]
