"""Source streaming: files, ``.INCLUDE`` expansion and macro frames.

The assembler consumes a :class:`SourceStream`, a stack of open frames.
Pushing a file (the root source or an ``.INCLUDE`` target) or a macro
expansion adds a frame; lines are drawn from the innermost frame first.
The stream performs include-cycle detection and records every file that
was opened — the ADVM layer later audits that record to detect tests that
bypass the abstraction layer (the paper's Figure 2 "abuse").

File access goes through a :class:`FileProvider` so the whole toolchain
works both against the real filesystem (ADVM workspaces are real
directory trees, Figures 3 and 5) and against in-memory sources in unit
tests.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from pathlib import Path

from repro.assembler.errors import IncludeError, SourceLocation


class FileProvider:
    """Abstract source-file access used by the assembler."""

    def read(self, path: str) -> str:
        raise NotImplementedError

    def resolve(self, path: str, from_dir: str | None) -> str | None:
        """Return a canonical path for *path*, or ``None`` if not found."""
        raise NotImplementedError


class FilesystemProvider(FileProvider):
    """Reads real files, searching the including file's directory first and
    then each configured include path (the ADVM test cells link to the
    abstraction layer through these search paths)."""

    def __init__(self, include_paths: list[str] | None = None):
        self.include_paths = [str(p) for p in (include_paths or [])]

    def read(self, path: str) -> str:
        return Path(path).read_text(encoding="utf-8")

    def resolve(self, path: str, from_dir: str | None) -> str | None:
        candidate = Path(path)
        if candidate.is_absolute():
            return str(candidate) if candidate.is_file() else None
        search: list[str] = []
        if from_dir:
            search.append(from_dir)
        search.extend(self.include_paths)
        for base in search:
            resolved = Path(base) / candidate
            if resolved.is_file():
                return str(resolved)
        if candidate.is_file():
            return str(candidate)
        return None


class InMemoryProvider(FileProvider):
    """Maps virtual paths to source text; used heavily by the test suite
    and by the ADVM constrained-random generator, which fabricates
    ``Globals.inc`` instances without touching disk."""

    def __init__(self, files: dict[str, str] | None = None):
        self.files = dict(files or {})

    def add(self, path: str, text: str) -> None:
        self.files[path] = text

    def read(self, path: str) -> str:
        try:
            return self.files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def resolve(self, path: str, from_dir: str | None) -> str | None:
        if path in self.files:
            return path
        if from_dir:
            joined = posixpath.normpath(posixpath.join(from_dir, path))
            if joined in self.files:
                return joined
        return None


@dataclass
class _Frame:
    """One open file or macro expansion."""

    name: str
    lines: list[str]
    index: int = 0
    #: Location of the line that opened this frame (include/invocation site).
    opened_at: SourceLocation | None = None
    is_file: bool = True

    def exhausted(self) -> bool:
        return self.index >= len(self.lines)


@dataclass
class SourceStream:
    """Stack-based line source with include tracking."""

    provider: FileProvider
    frames: list[_Frame] = field(default_factory=list)
    #: Files opened, in first-open order (root first).
    opened_files: list[str] = field(default_factory=list)
    max_depth: int = 64

    def _open_files_on_stack(self) -> set[str]:
        return {f.name for f in self.frames if f.is_file}

    def push_file(
        self, path: str, opened_at: SourceLocation | None = None
    ) -> None:
        from_dir = None
        for frame in reversed(self.frames):
            if frame.is_file:
                from_dir = posixpath.dirname(frame.name) or str(
                    Path(frame.name).parent
                )
                break
        resolved = self.provider.resolve(path, from_dir)
        if resolved is None:
            raise IncludeError(
                f"include file {path!r} not found",
                opened_at or SourceLocation(path, 0),
            )
        if resolved in self._open_files_on_stack():
            raise IncludeError(
                f"include cycle through {resolved!r}",
                opened_at or SourceLocation(resolved, 0),
            )
        if len(self.frames) >= self.max_depth:
            raise IncludeError(
                f"include/macro nesting deeper than {self.max_depth}",
                opened_at or SourceLocation(resolved, 0),
            )
        text = self.provider.read(resolved)
        self.frames.append(
            _Frame(
                name=resolved,
                lines=text.splitlines(),
                opened_at=opened_at,
                is_file=True,
            )
        )
        if resolved not in self.opened_files:
            self.opened_files.append(resolved)

    def push_text(
        self,
        name: str,
        text: str,
        opened_at: SourceLocation | None = None,
        is_file: bool = True,
    ) -> None:
        """Push literal source text (root in-memory sources, macro bodies)."""
        if len(self.frames) >= self.max_depth:
            raise IncludeError(
                f"include/macro nesting deeper than {self.max_depth}",
                opened_at or SourceLocation(name, 0),
            )
        self.frames.append(
            _Frame(
                name=name,
                lines=text.splitlines(),
                opened_at=opened_at,
                is_file=is_file,
            )
        )
        if is_file and name not in self.opened_files:
            self.opened_files.append(name)

    def next_line(self) -> tuple[str, SourceLocation] | None:
        """Pop the next source line, unwinding finished frames."""
        while self.frames and self.frames[-1].exhausted():
            self.frames.pop()
        if not self.frames:
            return None
        frame = self.frames[-1]
        line = frame.lines[frame.index]
        frame.index += 1
        location = SourceLocation(
            filename=frame.name,
            line=frame.index,
            context=(
                frame.opened_at.context + ((frame.opened_at.filename, frame.opened_at.line),)
                if frame.opened_at is not None
                else ()
            ),
        )
        return line, location
