"""Two-pass macro assembler for the SC88.

The assembler supports the directive set the ADVM paper's examples use
(``.INCLUDE``, ``NAME .EQU expr``, ``.DEFINE``) plus the conditional
assembly and macro machinery an abstraction layer needs to adapt itself to
derivatives and simulation targets (``.IFDEF DERIVATIVE_SC88B`` etc.):

========================  ====================================================
directive                 effect
========================  ====================================================
``.INCLUDE "file"``       splice another source file (searched via include
                          paths; cycles are errors)
``NAME .EQU expr``        define an assembly-time constant (also
                          ``.EQU NAME, expr``)
``.DEFINE NAME tokens``   textual alias, e.g. ``.DEFINE CallAddr A12``
``.UNDEF NAME``           remove a ``.DEFINE``/``.EQU``
``.IF expr`` /
``.IFDEF`` / ``.IFNDEF``
/ ``.ELSE`` / ``.ENDIF``  conditional assembly (nestable)
``.MACRO name [params]``
/ ``.ENDM``               macros; ``\\@`` expands to a unique counter
``.SECTION name``         switch output section (default ``text``)
``.ORG expr``             fix the current section's base address
``.GLOBAL`` / ``.EXTERN`` accepted for documentation (labels export anyway)
``.WORD/.HALF/.BYTE``     emit data (``.WORD`` may reference symbols)
``.ASCII/.ASCIIZ``        emit string bytes
``.SPACE expr``           reserve zeroed bytes
``.ALIGN expr``           pad to a boundary
``.END``                  stop assembling
========================  ====================================================

Pass 1 streams source lines (through includes, conditionals and macro
expansions), collects symbols and sizes every statement; pass 2 evaluates
operand expressions and encodes.  References to symbols not defined in the
unit become relocations on 32-bit literal words, resolved by the linker —
that is exactly how a test cell calls ``Base_Init_Register`` from a
separately assembled ``Base_Functions.asm``.

Callers may inject *predefines* (``{"DERIVATIVE_SC88B": 1}``), the
equivalent of command-line ``-D`` flags; the ADVM abstraction layer keys
its derivative/target switching off them.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.assembler.errors import (
    DirectiveError,
    EncodingError,
    ParseError,
    SourceLocation,
    SymbolError,
)
from repro.assembler.expressions import ExprResult, evaluate_all
from repro.assembler.lexer import Token, TokenKind, tokenize_line
from repro.assembler.objectfile import ObjectFile, TEXT_SECTION
from repro.assembler.preprocessor import (
    FileProvider,
    FilesystemProvider,
    SourceStream,
)
from repro.isa.encoding import encode_word
from repro.isa.instructions import (
    InstructionSpec,
    OperandKind,
    specs_for_mnemonic,
)
from repro.isa.registers import Register, RegisterClass, parse_register

_MAX_DEFINE_DEPTH = 16


class OperandShape(enum.Enum):
    """Syntactic operand categories, before spec matching."""

    DREG = "data register"
    AREG = "address register"
    MEMIND = "[aN + offset]"
    MEMABS = "[absolute]"
    EXPR = "expression"


@dataclass
class ParsedOperand:
    shape: OperandShape
    register: Register | None = None
    expr_tokens: list[Token] = field(default_factory=list)
    offset_tokens: list[Token] = field(default_factory=list)


@dataclass
class _InstrStatement:
    spec: InstructionSpec
    operands: list[ParsedOperand]
    section: str
    offset: int
    location: SourceLocation
    source: str


@dataclass
class _DataStatement:
    directive: str
    chunks: list[list[Token]]
    text: str | None
    size: int
    section: str
    offset: int
    location: SourceLocation
    source: str


@dataclass
class _MacroDef:
    name: str
    params: list[str]
    body: list[str]
    location: SourceLocation


@dataclass
class _CondFrame:
    taking: bool
    taken_before: bool
    seen_else: bool
    parent_active: bool


@dataclass
class ListingRecord:
    """One listing row: where the bytes came from and what they are."""

    section: str
    offset: int
    data: bytes
    source: str
    location: SourceLocation


class Assembler:
    """Reusable assembler front end.

    One :class:`Assembler` instance holds the file provider, include
    search paths and predefines; each :meth:`assemble_file` /
    :meth:`assemble_source` call is an independent translation unit.
    """

    def __init__(
        self,
        provider: FileProvider | None = None,
        include_paths: list[str] | None = None,
        predefines: dict[str, int] | None = None,
    ):
        self.provider = provider or FilesystemProvider(include_paths or [])
        if include_paths and isinstance(self.provider, FilesystemProvider):
            self.provider.include_paths = [str(p) for p in include_paths]
        self.predefines = dict(predefines or {})

    # -- public API ----------------------------------------------------------
    def assemble_file(
        self, path: str, object_name: str | None = None
    ) -> ObjectFile:
        unit = _Unit(self, object_name or path)
        unit.stream.push_file(path)
        return unit.run()

    def assemble_source(
        self, text: str, name: str = "<source>"
    ) -> ObjectFile:
        unit = _Unit(self, name)
        unit.stream.push_text(name, text)
        return unit.run()


class _Unit:
    """State for assembling one translation unit (both passes)."""

    def __init__(self, owner: Assembler, name: str):
        self.owner = owner
        self.name = name
        self.stream = SourceStream(owner.provider)
        self.equ: dict[str, int] = dict(owner.predefines)
        self.defines: dict[str, list[Token]] = {}
        self.macros: dict[str, _MacroDef] = {}
        self.cond_stack: list[_CondFrame] = []
        self.macro_counter = 0
        self.capturing: _MacroDef | None = None
        self.current_section = TEXT_SECTION
        self.cursors: dict[str, int] = {TEXT_SECTION: 0}
        self.orgs: dict[str, int] = {}
        self.statements: list[_InstrStatement | _DataStatement] = []
        self.obj = ObjectFile(name=name)
        self.listing: list[ListingRecord] = []
        self.ended = False

    # ---------------------------------------------------------------- pass 1
    def run(self) -> ObjectFile:
        while not self.ended:
            item = self.stream.next_line()
            if item is None:
                break
            line, location = item
            self._pass1_line(line, location)
        if self.capturing is not None:
            raise DirectiveError(
                f"missing .ENDM for macro {self.capturing.name!r}",
                self.capturing.location,
            )
        if self.cond_stack:
            raise DirectiveError("missing .ENDIF at end of unit")
        self._pass2()
        self.obj.included_files = list(self.stream.opened_files)
        if not self.obj.included_files:
            self.obj.included_files = [self.name]
        self.obj.define_snapshot = dict(self.equ)
        return self.obj

    def _active(self) -> bool:
        return all(f.taking and f.parent_active for f in self.cond_stack)

    def _pass1_line(self, line: str, location: SourceLocation) -> None:
        # Macro body capture swallows raw lines (they may contain `\@`
        # and parameter placeholders that only lex after substitution).
        if self.capturing is not None:
            head = line.strip().split(None, 1)[0].upper() if line.strip() else ""
            if head == ".ENDM":
                self.macros[self.capturing.name.upper()] = self.capturing
                self.capturing = None
            elif head == ".MACRO":
                raise DirectiveError("nested .MACRO is not supported", location)
            else:
                self.capturing.body.append(line)
            return

        tokens = tokenize_line(line, location)
        if tokens[0].kind is TokenKind.EOL:
            return

        # Conditional directives are interpreted even in skipped regions.
        if tokens[0].kind is TokenKind.DIRECTIVE:
            upper = tokens[0].text.upper()
            if upper in (".IF", ".IFDEF", ".IFNDEF", ".ELSE", ".ENDIF"):
                self._conditional(upper, tokens[1:], location)
                return
        if not self._active():
            return

        self._statement(tokens, line, location)

    def _conditional(
        self, directive: str, rest: list[Token], location: SourceLocation
    ) -> None:
        if directive == ".IF":
            condition = False
            if self._active():
                expanded = self._expand_defines(rest, location)
                result = evaluate_all(
                    expanded, self._strict_resolver(location), location
                )
                condition = (
                    result.require_absolute(".IF condition", location) != 0
                )
            self.cond_stack.append(
                _CondFrame(condition, condition, False, self._active())
            )
        elif directive in (".IFDEF", ".IFNDEF"):
            if not rest or rest[0].kind is not TokenKind.IDENT:
                raise DirectiveError(f"{directive} requires a name", location)
            name = rest[0].text
            defined = name in self.equ or name in self.defines
            condition = defined if directive == ".IFDEF" else not defined
            active = self._active()
            self.cond_stack.append(
                _CondFrame(condition and active, condition, False, active)
            )
        elif directive == ".ELSE":
            if not self.cond_stack:
                raise DirectiveError(".ELSE without .IF", location)
            frame = self.cond_stack[-1]
            if frame.seen_else:
                raise DirectiveError("duplicate .ELSE", location)
            frame.seen_else = True
            frame.taking = frame.parent_active and not frame.taken_before
        elif directive == ".ENDIF":
            if not self.cond_stack:
                raise DirectiveError(".ENDIF without .IF", location)
            self.cond_stack.pop()

    # -- statements ------------------------------------------------------
    def _statement(
        self, tokens: list[Token], line: str, location: SourceLocation
    ) -> None:
        index = 0
        # `label:` prefix (possibly the whole line).
        if (
            tokens[0].kind is TokenKind.IDENT
            and len(tokens) > 1
            and tokens[1].is_punct(":")
        ):
            self._add_label(tokens[0].text, location)
            index = 2
            if tokens[index].kind is TokenKind.EOL:
                return

        head = tokens[index]
        rest = tokens[index + 1 :]
        if head.kind is TokenKind.DIRECTIVE:
            self._directive(head.text.upper(), rest, line, location)
            return
        if head.kind is TokenKind.IDENT:
            # `NAME .EQU expr` form.
            if rest and rest[0].kind is TokenKind.DIRECTIVE and rest[
                0
            ].text.upper() in (".EQU", ".SET"):
                self._equ_directive(head.text, rest[1:], location)
                return
            if head.text.upper() in self.macros:
                self._invoke_macro(head.text.upper(), rest, location)
                return
            self._instruction(head.text, rest, line, location)
            return
        raise ParseError(f"unexpected token {head!s}", location)

    def _add_label(self, name: str, location: SourceLocation) -> None:
        self.obj.add_symbol(
            name,
            self.current_section,
            self.cursors[self.current_section],
            location,
        )

    # -- directives -----------------------------------------------------
    def _directive(
        self,
        directive: str,
        rest: list[Token],
        line: str,
        location: SourceLocation,
    ) -> None:
        if directive == ".INCLUDE":
            if not rest or rest[0].kind not in (
                TokenKind.STRING,
                TokenKind.IDENT,
            ):
                raise DirectiveError(".INCLUDE requires a file name", location)
            self.stream.push_file(rest[0].text, location)
        elif directive in (".EQU", ".SET"):
            if (
                len(rest) < 3
                or rest[0].kind is not TokenKind.IDENT
                or not rest[1].is_punct(",")
            ):
                raise DirectiveError(
                    f"{directive} requires: {directive} NAME, expr", location
                )
            self._equ_directive(rest[0].text, rest[2:], location)
        elif directive == ".DEFINE":
            if not rest or rest[0].kind is not TokenKind.IDENT:
                raise DirectiveError(".DEFINE requires a name", location)
            name = rest[0].text
            body = [t for t in rest[1:] if t.kind is not TokenKind.EOL]
            if not body:
                body = [Token(TokenKind.NUMBER, "1", 1)]
            if name in self.defines:
                raise SymbolError(f"duplicate .DEFINE {name!r}", location)
            self.defines[name] = body
        elif directive == ".UNDEF":
            if not rest or rest[0].kind is not TokenKind.IDENT:
                raise DirectiveError(".UNDEF requires a name", location)
            self.defines.pop(rest[0].text, None)
            self.equ.pop(rest[0].text, None)
        elif directive == ".MACRO":
            self._begin_macro(rest, location)
        elif directive == ".ENDM":
            raise DirectiveError(".ENDM without .MACRO", location)
        elif directive == ".SECTION":
            if not rest or rest[0].kind is not TokenKind.IDENT:
                raise DirectiveError(".SECTION requires a name", location)
            self.current_section = rest[0].text
            self.cursors.setdefault(self.current_section, 0)
        elif directive == ".ORG":
            value = self._absolute(rest, ".ORG address", location)
            if self.cursors[self.current_section] != 0:
                raise DirectiveError(
                    ".ORG is only allowed before any bytes are emitted into "
                    f"section {self.current_section!r}",
                    location,
                )
            self.orgs[self.current_section] = value
        elif directive in (".GLOBAL", ".GLOBL", ".EXTERN"):
            pass  # labels export automatically; externs are inferred
        elif directive in (".WORD", ".HALF", ".BYTE"):
            chunks = self._split_commas(
                [t for t in rest if t.kind is not TokenKind.EOL], location
            )
            if not chunks:
                raise DirectiveError(f"{directive} requires values", location)
            unit = {".WORD": 4, ".HALF": 2, ".BYTE": 1}[directive]
            self._record_data(
                directive, chunks, None, unit * len(chunks), line, location
            )
        elif directive in (".ASCII", ".ASCIIZ"):
            if not rest or rest[0].kind is not TokenKind.STRING:
                raise DirectiveError(f"{directive} requires a string", location)
            text = rest[0].text
            size = len(text.encode("latin-1")) + (directive == ".ASCIIZ")
            self._record_data(directive, [], text, size, line, location)
        elif directive == ".SPACE":
            size = self._absolute(rest, ".SPACE size", location)
            if size < 0:
                raise DirectiveError(".SPACE size must be >= 0", location)
            self._record_data(".SPACE", [], None, size, line, location)
        elif directive == ".ALIGN":
            boundary = self._absolute(rest, ".ALIGN boundary", location)
            if boundary <= 0 or boundary & (boundary - 1):
                raise DirectiveError(
                    ".ALIGN boundary must be a power of two", location
                )
            cursor = self.cursors[self.current_section]
            pad = (-cursor) % boundary
            if pad:
                self._record_data(".SPACE", [], None, pad, line, location)
        elif directive == ".END":
            self.ended = True
        elif directive == ".ERROR":
            message = (
                rest[0].text
                if rest and rest[0].kind is TokenKind.STRING
                else "user .ERROR"
            )
            raise DirectiveError(f".ERROR: {message}", location)
        else:
            raise DirectiveError(f"unknown directive {directive}", location)

    def _equ_directive(
        self, name: str, value_tokens: list[Token], location: SourceLocation
    ) -> None:
        expanded = self._expand_defines(value_tokens, location)
        result = evaluate_all(
            expanded, self._strict_resolver(location), location
        )
        value = result.require_absolute(f".EQU {name}", location)
        if name in self.equ and self.equ[name] != value:
            raise SymbolError(
                f".EQU {name!r} redefined with a different value "
                f"({self.equ[name]:#x} -> {value:#x})",
                location,
            )
        self.equ[name] = value

    def _absolute(
        self, rest: list[Token], what: str, location: SourceLocation
    ) -> int:
        expanded = self._expand_defines(
            [t for t in rest if t.kind is not TokenKind.EOL], location
        )
        expanded.append(Token(TokenKind.EOL, ""))
        result = evaluate_all(
            expanded, self._strict_resolver(location), location
        )
        return result.require_absolute(what, location)

    def _record_data(
        self,
        directive: str,
        chunks: list[list[Token]],
        text: str | None,
        size: int,
        line: str,
        location: SourceLocation,
    ) -> None:
        offset = self.cursors[self.current_section]
        self.statements.append(
            _DataStatement(
                directive=directive,
                chunks=chunks,
                text=text,
                size=size,
                section=self.current_section,
                offset=offset,
                location=location,
                source=line.strip(),
            )
        )
        self.cursors[self.current_section] = offset + size

    # -- macros -----------------------------------------------------------
    def _begin_macro(
        self, rest: list[Token], location: SourceLocation
    ) -> None:
        if not rest or rest[0].kind is not TokenKind.IDENT:
            raise DirectiveError(".MACRO requires a name", location)
        name = rest[0].text
        params: list[str] = []
        for chunk in self._split_commas(
            [t for t in rest[1:] if t.kind is not TokenKind.EOL], location
        ):
            if len(chunk) != 1 or chunk[0].kind is not TokenKind.IDENT:
                raise DirectiveError(
                    ".MACRO parameters must be plain names", location
                )
            params.append(chunk[0].text)
        self.capturing = _MacroDef(name, params, [], location)

    def _invoke_macro(
        self, name: str, rest: list[Token], location: SourceLocation
    ) -> None:
        macro = self.macros[name]
        chunks = self._split_commas(
            [t for t in rest if t.kind is not TokenKind.EOL], location
        )
        if len(chunks) != len(macro.params):
            raise ParseError(
                f"macro {macro.name!r} expects {len(macro.params)} "
                f"argument(s), got {len(chunks)}",
                location,
            )
        args = [" ".join(t.text for t in chunk) for chunk in chunks]
        self.macro_counter += 1
        counter = str(self.macro_counter)
        lines: list[str] = []
        for body_line in macro.body:
            expanded = body_line.replace("\\@", counter)
            for param, arg in zip(macro.params, args):
                expanded = re.sub(
                    rf"\b{re.escape(param)}\b", arg, expanded
                )
            lines.append(expanded)
        self.stream.push_text(
            f"<macro {macro.name}>",
            "\n".join(lines),
            opened_at=location,
            is_file=False,
        )

    # -- instructions ------------------------------------------------------
    def _instruction(
        self,
        mnemonic: str,
        rest: list[Token],
        line: str,
        location: SourceLocation,
    ) -> None:
        specs = specs_for_mnemonic(mnemonic)
        if not specs:
            raise ParseError(
                f"unknown instruction or macro {mnemonic!r}", location
            )
        body = self._expand_defines(
            [t for t in rest if t.kind is not TokenKind.EOL], location
        )
        chunks = self._split_commas(body, location)
        operands = [self._parse_operand(c, location) for c in chunks]
        spec = self._match_spec(mnemonic, specs, operands, location)
        offset = self.cursors[self.current_section]
        self.statements.append(
            _InstrStatement(
                spec=spec,
                operands=operands,
                section=self.current_section,
                offset=offset,
                location=location,
                source=line.strip(),
            )
        )
        self.cursors[self.current_section] = offset + spec.size_bytes

    def _parse_operand(
        self, chunk: list[Token], location: SourceLocation
    ) -> ParsedOperand:
        if not chunk:
            raise ParseError("empty operand", location)
        if chunk[0].is_punct("["):
            if not chunk[-1].is_punct("]"):
                raise ParseError("unterminated memory operand", location)
            inner = chunk[1:-1]
            if not inner:
                raise ParseError("empty memory operand", location)
            first_reg = (
                parse_register(inner[0].text)
                if inner[0].kind is TokenKind.IDENT
                else None
            )
            if first_reg is not None and first_reg.cls is RegisterClass.ADDRESS:
                offset_tokens = inner[1:]
                if offset_tokens and offset_tokens[0].is_punct("+"):
                    offset_tokens = offset_tokens[1:]
                    if not offset_tokens:
                        raise ParseError(
                            "missing offset after '+' in memory operand",
                            location,
                        )
                if not offset_tokens:
                    offset_tokens = [Token(TokenKind.NUMBER, "0", 0)]
                return ParsedOperand(
                    OperandShape.MEMIND,
                    register=first_reg,
                    offset_tokens=offset_tokens,
                )
            return ParsedOperand(OperandShape.MEMABS, expr_tokens=inner)
        if len(chunk) == 1 and chunk[0].kind is TokenKind.IDENT:
            reg = parse_register(chunk[0].text)
            if reg is not None:
                shape = (
                    OperandShape.DREG
                    if reg.cls is RegisterClass.DATA
                    else OperandShape.AREG
                )
                return ParsedOperand(shape, register=reg)
        return ParsedOperand(OperandShape.EXPR, expr_tokens=chunk)

    _EXPR_KINDS = frozenset(
        {
            OperandKind.IMM16S,
            OperandKind.IMM16U,
            OperandKind.IMM32,
            OperandKind.POS,
            OperandKind.WIDTH,
            OperandKind.TRAPNUM,
        }
    )

    def _operand_matches(
        self, operand: ParsedOperand, kind: OperandKind
    ) -> bool:
        if kind is OperandKind.DREG:
            return operand.shape is OperandShape.DREG
        if kind is OperandKind.AREG:
            return operand.shape is OperandShape.AREG
        if kind is OperandKind.MEMIND:
            return operand.shape is OperandShape.MEMIND
        if kind is OperandKind.MEMABS:
            return operand.shape is OperandShape.MEMABS
        return operand.shape is OperandShape.EXPR and kind in self._EXPR_KINDS

    def _match_spec(
        self,
        mnemonic: str,
        specs: list[InstructionSpec],
        operands: list[ParsedOperand],
        location: SourceLocation,
    ) -> InstructionSpec:
        for spec in specs:
            if len(spec.operands) != len(operands):
                continue
            if all(
                self._operand_matches(op, kind)
                for op, kind in zip(operands, spec.operands)
            ):
                return spec
        shapes = ", ".join(op.shape.value for op in operands) or "(none)"
        expected = "; or ".join(
            ", ".join(k.value for k in s.operands) or "(none)" for s in specs
        )
        raise ParseError(
            f"no form of {mnemonic!r} matches operands ({shapes}); "
            f"expected: {expected}",
            location,
        )

    # -- shared helpers ------------------------------------------------------
    def _split_commas(
        self, tokens: list[Token], location: SourceLocation
    ) -> list[list[Token]]:
        chunks: list[list[Token]] = []
        current: list[Token] = []
        depth = 0
        for token in tokens:
            if token.kind is TokenKind.PUNCT and token.text in "([":
                depth += 1
            elif token.kind is TokenKind.PUNCT and token.text in ")]":
                depth -= 1
            if token.is_punct(",") and depth == 0:
                if not current:
                    raise ParseError("empty operand before ','", location)
                chunks.append(current)
                current = []
            else:
                current.append(token)
        if current:
            chunks.append(current)
        elif chunks:
            raise ParseError("trailing ',' in operand list", location)
        return chunks

    def _expand_defines(
        self, tokens: list[Token], location: SourceLocation
    ) -> list[Token]:
        out = list(tokens)
        for _ in range(_MAX_DEFINE_DEPTH):
            expanded: list[Token] = []
            changed = False
            for token in out:
                if token.kind is TokenKind.IDENT and token.text in self.defines:
                    expanded.extend(self.defines[token.text])
                    changed = True
                else:
                    expanded.append(token)
            out = expanded
            if not changed:
                return out
        raise ParseError(
            "`.DEFINE` expansion exceeded depth limit (cyclic definition?)",
            location,
        )

    def _strict_resolver(self, location: SourceLocation):
        """Resolver for contexts that cannot take forward/extern symbols."""

        def resolve(name: str) -> int | None:
            return self.equ.get(name)

        return resolve

    def _pass2_resolver(self):
        """Pass-2 resolver: EQUs are absolute; anything else is symbolic
        (a local label or an external, both settled by the linker)."""

        def resolve(name: str) -> int | None:
            return self.equ.get(name)

        return resolve

    # ---------------------------------------------------------------- pass 2
    def _pass2(self) -> None:
        resolver = self._pass2_resolver()
        for name, org in self.orgs.items():
            self.obj.section(name).org = org
        for stmt in self.statements:
            section = self.obj.section(stmt.section)
            if section.size != stmt.offset:
                raise EncodingError(
                    f"internal: pass-1/pass-2 offset mismatch in section "
                    f"{stmt.section!r} ({section.size} != {stmt.offset})",
                    stmt.location,
                )
            before = section.size
            if isinstance(stmt, _InstrStatement):
                self._encode_instruction(stmt, section, resolver)
            else:
                self._encode_data(stmt, section, resolver)
            self.listing.append(
                ListingRecord(
                    section=stmt.section,
                    offset=before,
                    data=bytes(section.data[before:]),
                    source=stmt.source,
                    location=stmt.location,
                )
            )

    def _eval(
        self,
        tokens: list[Token],
        resolver,
        location: SourceLocation,
    ) -> ExprResult:
        padded = list(tokens) + [Token(TokenKind.EOL, "")]
        return evaluate_all(padded, resolver, location)

    @staticmethod
    def _check_range(
        value: int, low: int, high: int, what: str, location: SourceLocation
    ) -> int:
        if not low <= value <= high:
            raise EncodingError(
                f"{what} value {value} out of range [{low}, {high}]", location
            )
        return value

    def _encode_instruction(
        self, stmt: _InstrStatement, section, resolver
    ) -> None:
        spec = stmt.spec
        fields: dict[str, int] = {f: 0 for f in spec.fmt.fields}
        literal_value: int | None = None
        literal_symbol: str | None = None

        for operand, kind, slot in zip(
            stmt.operands, spec.operands, spec.slots
        ):
            loc = stmt.location
            if slot in ("r1", "r2", "r3"):
                assert operand.register is not None
                fields[slot] = operand.register.index
            elif slot == "mem":
                assert operand.register is not None
                fields["r2"] = operand.register.index
                offset = self._eval(
                    operand.offset_tokens, resolver, loc
                ).require_absolute("memory offset", loc)
                self._check_range(offset, -32768, 32767, "memory offset", loc)
                fields["imm16"] = offset & 0xFFFF
            elif slot == "imm16":
                result = self._eval(operand.expr_tokens, resolver, loc)
                value = result.require_absolute("16-bit immediate", loc)
                if kind is OperandKind.IMM16S:
                    self._check_range(
                        value, -32768, 32767, "signed immediate", loc
                    )
                else:
                    self._check_range(
                        value, 0, 0xFFFF, "unsigned immediate", loc
                    )
                fields["imm16"] = value & 0xFFFF
            elif slot == "pos":
                result = self._eval(operand.expr_tokens, resolver, loc)
                fields["pos"] = self._check_range(
                    result.require_absolute("bit position", loc),
                    0,
                    31,
                    "bit position",
                    loc,
                )
            elif slot == "width":
                result = self._eval(operand.expr_tokens, resolver, loc)
                fields["width"] = self._check_range(
                    result.require_absolute("field width", loc),
                    1,
                    32,
                    "field width",
                    loc,
                )
            elif slot == "imm8":
                result = self._eval(operand.expr_tokens, resolver, loc)
                fields["imm8"] = self._check_range(
                    result.require_absolute("trap number", loc),
                    0,
                    255,
                    "trap number",
                    loc,
                )
            elif slot == "literal":
                result = self._eval(operand.expr_tokens, resolver, loc)
                if result.symbol is not None:
                    literal_symbol = result.symbol
                    literal_value = result.value
                else:
                    literal_value = self._check_range(
                        result.value,
                        -(1 << 31),
                        (1 << 32) - 1,
                        "32-bit literal",
                        loc,
                    )
            else:  # pragma: no cover - table is static
                raise EncodingError(f"unknown slot {slot!r}", stmt.location)

        try:
            word = encode_word(spec.fmt, int(spec.opcode), **fields)
        except ValueError as exc:  # pragma: no cover - ranges pre-checked
            raise EncodingError(str(exc), stmt.location) from exc
        section.emit_word(word)
        if spec.fmt.has_literal:
            if literal_value is None:
                raise EncodingError(
                    f"{spec.name} requires a literal operand", stmt.location
                )
            offset = section.emit_word(literal_value)
            if literal_symbol is not None:
                self.obj.add_relocation(
                    stmt.section,
                    offset,
                    literal_symbol,
                    addend=literal_value,
                    location=stmt.location,
                )

    def _encode_data(self, stmt: _DataStatement, section, resolver) -> None:
        loc = stmt.location
        if stmt.directive == ".WORD":
            for chunk in stmt.chunks:
                result = self._eval(chunk, resolver, loc)
                if result.symbol is not None:
                    offset = section.emit_word(result.value)
                    self.obj.add_relocation(
                        stmt.section,
                        offset,
                        result.symbol,
                        addend=result.value,
                        location=loc,
                    )
                else:
                    value = self._check_range(
                        result.value,
                        -(1 << 31),
                        (1 << 32) - 1,
                        ".WORD",
                        loc,
                    )
                    section.emit_word(value)
        elif stmt.directive == ".HALF":
            for chunk in stmt.chunks:
                value = self._eval(chunk, resolver, loc).require_absolute(
                    ".HALF", loc
                )
                self._check_range(value, -(1 << 15), (1 << 16) - 1, ".HALF", loc)
                section.emit_bytes((value & 0xFFFF).to_bytes(2, "little"))
        elif stmt.directive == ".BYTE":
            for chunk in stmt.chunks:
                value = self._eval(chunk, resolver, loc).require_absolute(
                    ".BYTE", loc
                )
                self._check_range(value, -(1 << 7), (1 << 8) - 1, ".BYTE", loc)
                section.emit_bytes(bytes([value & 0xFF]))
        elif stmt.directive in (".ASCII", ".ASCIIZ"):
            assert stmt.text is not None
            payload = stmt.text.encode("latin-1")
            if stmt.directive == ".ASCIIZ":
                payload += b"\x00"
            section.emit_bytes(payload)
        elif stmt.directive == ".SPACE":
            section.emit_bytes(bytes(stmt.size))
        else:  # pragma: no cover - directives pre-validated in pass 1
            raise EncodingError(
                f"unknown data directive {stmt.directive}", loc
            )
