"""Linker: combines object files into a loadable memory image.

The ADVM build of one test cell links at least three objects — the test
itself, the abstraction layer's ``Base_Functions.asm``, and global-layer
libraries (embedded software, trap handlers).  The linker:

1. places sections — sections carrying an ``.ORG`` go exactly there;
   floating ``text``-like sections are packed into the code region and
   floating ``data``-like sections into the data region;
2. builds the global symbol table (duplicate definitions are errors);
3. patches every relocation with ``symbol + addend``;
4. checks that no two placed sections overlap and that each fits in
   memory.

The result is a :class:`MemoryImage` that every execution platform loads
verbatim — which is precisely the property the paper's Section 1 claims
for assembler-driven tests (one binary artefact for golden model, RTL,
gates, emulator and silicon).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.assembler.errors import LinkError, UNKNOWN_LOCATION
from repro.assembler.objectfile import DATA_SECTION, ObjectFile, TEXT_SECTION

#: Default placement bases, overridable from the SoC memory map.
DEFAULT_TEXT_BASE = 0x0000_0100
DEFAULT_DATA_BASE = 0x1000_0000
ENTRY_SYMBOL = "_main"


@dataclass
class PlacedSection:
    """A section fixed at an absolute base address."""

    object_name: str
    name: str
    base: int
    data: bytes

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def overlaps(self, other: "PlacedSection") -> bool:
        return self.base < other.end and other.base < self.end


@dataclass
class MemoryImage:
    """Fully linked, loadable image: segments + absolute symbol table."""

    segments: list[PlacedSection] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int | None = None

    def read_word(self, address: int) -> int:
        for segment in self.segments:
            if segment.base <= address and address + 4 <= segment.end:
                offset = address - segment.base
                return int.from_bytes(
                    segment.data[offset : offset + 4], "little"
                )
        raise LinkError(f"no image data at address {address:#010x}")

    @property
    def total_bytes(self) -> int:
        return sum(len(s.data) for s in self.segments)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise LinkError(f"symbol {name!r} not present in image") from None

    def digest(self) -> str:
        """Content digest over segments and entry point.

        Two images with equal digests load and execute identically, so
        the digest keys the decode-cache registry and the persistent
        regression result cache.  Memoised; images are treated as
        immutable once linked.
        """
        cached = getattr(self, "_digest", None)
        if cached is not None:
            return cached
        hasher = hashlib.sha256()
        hasher.update(str(self.entry).encode())
        for segment in sorted(self.segments, key=lambda s: s.base):
            hasher.update(segment.base.to_bytes(8, "little"))
            hasher.update(len(segment.data).to_bytes(8, "little"))
            hasher.update(segment.data)
        self._digest = hasher.hexdigest()
        return self._digest


@dataclass
class Region:
    """A placement region with bounds checking."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int) -> bool:
        return self.base <= address and address + length <= self.end


class Linker:
    """Places sections, resolves symbols, patches relocations."""

    def __init__(
        self,
        text_base: int = DEFAULT_TEXT_BASE,
        data_base: int = DEFAULT_DATA_BASE,
        text_region: Region | None = None,
        data_region: Region | None = None,
    ):
        self.text_base = text_base
        self.data_base = data_base
        self.text_region = text_region
        self.data_region = data_region

    def link(
        self,
        objects: list[ObjectFile],
        entry_symbol: str = ENTRY_SYMBOL,
        require_entry: bool = True,
    ) -> MemoryImage:
        if not objects:
            raise LinkError("nothing to link")
        placements = self._place(objects)
        symbols = self._symbol_table(objects, placements)
        image = MemoryImage(symbols=symbols)
        for (obj, section_name), base in placements.items():
            obj_file = next(o for o in objects if o.name == obj)
            data = bytearray(obj_file.sections[section_name].data)
            image.segments.append(
                PlacedSection(obj, section_name, base, bytes(data))
            )
        self._check_overlaps(image)
        self._patch(objects, placements, symbols, image)
        if entry_symbol in symbols:
            image.entry = symbols[entry_symbol]
        elif require_entry:
            raise LinkError(
                f"entry symbol {entry_symbol!r} is not defined by any object "
                f"(objects: {[o.name for o in objects]})"
            )
        return image

    # -- internals ---------------------------------------------------------
    def _place(
        self, objects: list[ObjectFile]
    ) -> dict[tuple[str, str], int]:
        placements: dict[tuple[str, str], int] = {}
        text_cursor = self.text_base
        data_cursor = self.data_base
        for obj in objects:
            for section in obj.sections.values():
                if section.size == 0 and section.org is None:
                    continue
                key = (obj.name, section.name)
                if section.org is not None:
                    placements[key] = section.org
                elif section.name == DATA_SECTION:
                    data_cursor = (data_cursor + 3) & ~3
                    placements[key] = data_cursor
                    data_cursor += section.size
                else:
                    # text and any custom floating section go to code space
                    text_cursor = (text_cursor + 3) & ~3
                    placements[key] = text_cursor
                    text_cursor += section.size
        self._check_regions(objects, placements)
        return placements

    def _check_regions(
        self,
        objects: list[ObjectFile],
        placements: dict[tuple[str, str], int],
    ) -> None:
        by_name = {o.name: o for o in objects}
        for (obj_name, section_name), base in placements.items():
            size = by_name[obj_name].sections[section_name].size
            for region in (self.text_region, self.data_region):
                if region is None:
                    continue
                # Only enforce regions the section actually starts inside.
                if region.base <= base < region.end and not region.contains(
                    base, size
                ):
                    raise LinkError(
                        f"section {section_name!r} of {obj_name!r} "
                        f"({size} bytes at {base:#010x}) does not fit in "
                        f"region {region.name} "
                        f"[{region.base:#010x}, {region.end:#010x})"
                    )

    def _symbol_table(
        self,
        objects: list[ObjectFile],
        placements: dict[tuple[str, str], int],
    ) -> dict[str, int]:
        symbols: dict[str, int] = {}
        defined_in: dict[str, str] = {}
        for obj in objects:
            for symbol in obj.symbols.values():
                if symbol.name in symbols:
                    raise LinkError(
                        f"symbol {symbol.name!r} defined in both "
                        f"{defined_in[symbol.name]!r} and {obj.name!r}",
                        symbol.location,
                    )
                key = (obj.name, symbol.section)
                if key not in placements:
                    # Label in an empty section: place at the section's
                    # would-be base (zero-size sections are not emitted).
                    raise LinkError(
                        f"symbol {symbol.name!r} lives in empty section "
                        f"{symbol.section!r} of {obj.name!r}",
                        symbol.location,
                    )
                symbols[symbol.name] = placements[key] + symbol.offset
                defined_in[symbol.name] = obj.name
        return symbols

    def _check_overlaps(self, image: MemoryImage) -> None:
        ordered = sorted(image.segments, key=lambda s: s.base)
        for first, second in zip(ordered, ordered[1:]):
            if first.overlaps(second):
                raise LinkError(
                    f"sections overlap: {first.object_name}/{first.name} "
                    f"[{first.base:#010x}, {first.end:#010x}) and "
                    f"{second.object_name}/{second.name} "
                    f"[{second.base:#010x}, {second.end:#010x})"
                )

    def _patch(
        self,
        objects: list[ObjectFile],
        placements: dict[tuple[str, str], int],
        symbols: dict[str, int],
        image: MemoryImage,
    ) -> None:
        segment_index = {
            (s.object_name, s.name): i for i, s in enumerate(image.segments)
        }
        missing: list[str] = []
        for obj in objects:
            for reloc in obj.relocations:
                if reloc.symbol not in symbols:
                    missing.append(
                        f"{reloc.symbol!r} (referenced from {obj.name} at "
                        f"{reloc.location})"
                    )
                    continue
                value = (symbols[reloc.symbol] + reloc.addend) & 0xFFFF_FFFF
                index = segment_index[(obj.name, reloc.section)]
                segment = image.segments[index]
                data = bytearray(segment.data)
                data[reloc.offset : reloc.offset + 4] = value.to_bytes(
                    4, "little"
                )
                image.segments[index] = PlacedSection(
                    segment.object_name, segment.name, segment.base, bytes(data)
                )
        if missing:
            raise LinkError(
                "undefined symbol(s): " + "; ".join(sorted(missing)),
                UNKNOWN_LOCATION,
            )
