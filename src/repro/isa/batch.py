"""N-wide architectural rows and batch executors for the lock-step engine.

The batched interpreter (:class:`~repro.platforms.session.BatchSession`)
runs N matrix cells — same image across platforms, or a stimulus sweep —
through one engine pass.  This module owns its data layout:

- :class:`LaneRows` holds the architectural state of every lane as
  N-wide *rows* (one row per architectural register, one column per
  lane): plain :mod:`array`-module rows by default, numpy vectors when
  numpy is importable (``HAVE_NUMPY``).  Rows make the cross-lane
  questions the batch engine asks — *which lanes diverge from the
  leader?  on which registers?* — single-row comparisons instead of
  per-lane object walks.

- ``BATCH_EXECUTORS`` are the lane-wise counterparts of the scalar
  executor table (:data:`repro.isa.decodecache.EXECUTORS`).  A scalar
  executor applies one decoded entry to one core; a batch executor
  applies the same entry's register effect across lane columns with a
  per-lane operand.  Only the *divergent* micro-ops need them: while
  lanes are converged the leader core executes every entry once for the
  whole batch, so the only per-lane work is re-applying the memory read
  that split the lanes (a simple load with a lane-local value).  Stores,
  stack ops and flag-setting ops never appear here — loads on this ISA
  write exactly one register and no PSW bits, which is what makes the
  surgical lane fork sound.

- :func:`load_footprint` recovers the byte span a decoded simple load
  read, from the *post-retire* register file: loads never modify their
  base address register, so the effective address is still computable
  after the instruction completed on the leader.
"""

from __future__ import annotations

from array import array

from repro.isa.decodecache import (
    DecodedInstruction,
    MEM_LD_B,
    MEM_LD_H,
    MEM_LD_W,
    MEM_LDABS_A,
    MEM_LDABS_D,
)
from repro.isa.registers import WORD_MASK

try:  # pragma: no cover - exercised through both backends in tests
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

#: Row order: 16 data registers, 16 address registers, then the
#: non-register architectural columns every lane carries.
ROW_NAMES: tuple[str, ...] = (
    tuple(f"d{i}" for i in range(16))
    + tuple(f"a{i}" for i in range(16))
    + ("pc", "psw", "cycles", "retired", "halted")
)


class LaneRows:
    """Architectural state of N lanes as per-register rows.

    Values are stored as signed 64-bit integers (every architectural
    value is an unsigned 32-bit word; cycle/retire counters fit with
    room to spare).  The numpy backend stores each row as an
    ``int64`` vector and answers divergence queries vectorised; the
    fallback uses :mod:`array` rows with the same layout.
    """

    __slots__ = ("lanes", "rows", "backend")

    def __init__(self, lanes: int, backend: str | None = None):
        if lanes <= 0:
            raise ValueError("LaneRows needs at least one lane")
        if backend is None:
            backend = "numpy" if HAVE_NUMPY else "array"
        if backend == "numpy" and not HAVE_NUMPY:
            raise ValueError("numpy backend requested but numpy is missing")
        self.lanes = lanes
        self.backend = backend
        if backend == "numpy":
            self.rows = {
                name: _np.zeros(lanes, dtype=_np.int64)
                for name in ROW_NAMES
            }
        else:
            zero = array("q", bytes(8 * lanes))
            self.rows = {name: array("q", zero) for name in ROW_NAMES}

    # -- scalar-core interchange -------------------------------------------
    def capture(self, lane: int, cpu) -> None:
        """Copy *cpu*'s architectural state into column *lane*."""
        rows = self.rows
        regs = cpu.regs
        data = regs.data
        address = regs.address
        for i in range(16):
            rows[f"d{i}"][lane] = data[i]
            rows[f"a{i}"][lane] = address[i]
        rows["pc"][lane] = regs.pc
        rows["psw"][lane] = regs.psw.value
        rows["cycles"][lane] = cpu.cycles
        rows["retired"][lane] = cpu.instructions_retired
        rows["halted"][lane] = int(cpu.halted)

    def broadcast(self, cpu, lanes: list[int] | None = None) -> None:
        """Copy *cpu*'s state into every listed column (default: all) —
        the converged half of a batch inherits the leader's state in one
        sweep at each sync point."""
        targets = range(self.lanes) if lanes is None else lanes
        for lane in targets:
            self.capture(lane, cpu)

    def restore(self, lane: int, cpu) -> None:
        """Write column *lane* back into a scalar core's register file
        (the fork half of a peel: the clone starts from its row)."""
        rows = self.rows
        regs = cpu.regs
        for i in range(16):
            regs.data[i] = int(rows[f"d{i}"][lane]) & WORD_MASK
            regs.address[i] = int(rows[f"a{i}"][lane]) & WORD_MASK
        regs.pc = int(rows["pc"][lane]) & WORD_MASK
        regs.psw.value = int(rows["psw"][lane]) & WORD_MASK
        cpu.cycles = int(rows["cycles"][lane])
        cpu.instructions_retired = int(rows["retired"][lane])
        cpu.halted = bool(rows["halted"][lane])

    def column(self, lane: int) -> dict[str, int]:
        """One lane's architectural state as a name -> value dict."""
        return {name: int(row[lane]) for name, row in self.rows.items()}

    # -- cross-lane queries -------------------------------------------------
    def diverging_lanes(self, reference: int = 0) -> list[int]:
        """Lanes whose column differs from *reference* in any row."""
        if self.backend == "numpy":
            matrix = _np.stack([self.rows[name] for name in ROW_NAMES])
            mask = _np.any(
                matrix != matrix[:, reference : reference + 1], axis=0
            )
            return [int(i) for i in _np.nonzero(mask)[0] if i != reference]
        out = []
        for lane in range(self.lanes):
            if lane == reference:
                continue
            for row in self.rows.values():
                if row[lane] != row[reference]:
                    out.append(lane)
                    break
        return out

    def lane_divergences(self, a: int, b: int) -> list[str]:
        """Row names on which lanes *a* and *b* disagree."""
        return [
            name for name in ROW_NAMES if self.rows[name][a] != self.rows[name][b]
        ]


# --------------------------------------------------------------------------
# batch executors: lane-wise application of divergent simple loads
# --------------------------------------------------------------------------
#
# Signature mirrors the scalar table's ``exec(cpu, entry)`` shifted to
# rows: ``(rows, lane, entry, value)`` applies *entry*'s register effect
# to one lane column with that lane's loaded *value*.  The pc/cycles/
# retired columns are not touched here — the load already retired on the
# leader, and its control/timing effect is lane-uniform (loads are not
# flag- or pc-relative-dependent on the loaded value).

def _bx_load_data(rows: LaneRows, lane: int, entry, value: int) -> None:
    rows.rows[f"d{entry.r1}"][lane] = value & WORD_MASK


def _bx_load_address(rows: LaneRows, lane: int, entry, value: int) -> None:
    rows.rows[f"a{entry.r1}"][lane] = value & WORD_MASK


BATCH_EXECUTORS = {
    MEM_LD_W: _bx_load_data,
    MEM_LD_H: _bx_load_data,
    MEM_LD_B: _bx_load_data,
    MEM_LDABS_D: _bx_load_data,
    MEM_LDABS_A: _bx_load_address,
}

#: Byte width of each batch-executable load.
_LOAD_SIZES = {
    MEM_LD_W: 4,
    MEM_LD_H: 2,
    MEM_LD_B: 1,
    MEM_LDABS_D: 4,
    MEM_LDABS_A: 4,
}


def load_footprint(
    regs, entry: DecodedInstruction
) -> tuple[int, int] | None:
    """(address, size) the simple load *entry* read, recovered from the
    post-retire register file; ``None`` for non-batch-executable kinds.

    Sound after retirement because none of these loads writes its base
    register: ``LD``'s destination is a data register and its base an
    address register (disjoint files), and the absolute forms take their
    address from the instruction word.
    """
    kind = entry.mem_kind
    size = _LOAD_SIZES.get(kind)
    if size is None:
        return None
    if kind in (MEM_LDABS_D, MEM_LDABS_A):
        return entry.mem_disp & WORD_MASK, size
    return (regs.address[entry.r2] + entry.mem_disp) & WORD_MASK, size
