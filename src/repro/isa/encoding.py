"""Instruction word formats and field packing for the SC88.

Every SC88 instruction occupies one or two 32-bit words.  The first word
always carries the opcode in bits ``[31:24]``; the remaining bits are laid
out according to the instruction's :class:`Format`.  Two-word instructions
carry a full 32-bit literal (immediate value or absolute address) in the
second word — this is how ``LOAD rd, <symbol>``, absolute ``STORE``,
jumps, calls and the immediate form of ``INSERT`` obtain 32-bit operands,
and it is the only place the linker ever needs to relocate.

Formats
-------
======  ==========================================  ======
name    first-word fields                           words
======  ==========================================  ======
NONE    —                                           1
R       r1                                          1
RR      r1, r2                                      1
RRR     r1, r2, r3                                  1
RI16    r1, r2, imm16                               1
I16     r1, imm16                                   1
MEM     r1, r2, imm16  (r2 is the address register) 1
BITR    r1, r2, r3, pos, width                      1
BIT     r1, r2, pos, width                          2
ABS     r1                                          2
TRAP    imm8                                        1
======  ==========================================  ======

``width`` fields store ``width - 1`` so the full 1..32 range fits in five
bits.  Packing helpers below take the *architectural* width (1..32) and
perform the bias internally, so callers never see the bias.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

WORD_BITS = 32
WORD_MASK = 0xFFFF_FFFF
OPCODE_SHIFT = 24
OPCODE_MASK = 0xFF

#: Field name -> (high bit, low bit), inclusive, within the first word.
_FIELD_SLOTS: dict[str, tuple[int, int]] = {
    "r1": (23, 20),
    "r2": (19, 16),
    "r3": (15, 12),
    "imm16": (15, 0),
    "imm8": (7, 0),
    "pos": (11, 7),
    "width": (6, 2),
}

#: Fields whose encoded value is biased by -1 (``width`` stores width-1).
_BIASED_FIELDS = frozenset({"width"})


class Format(enum.Enum):
    """Instruction word formats (see module docstring)."""

    NONE = enum.auto()
    R = enum.auto()
    RR = enum.auto()
    RRR = enum.auto()
    RI16 = enum.auto()
    I16 = enum.auto()
    MEM = enum.auto()
    BITR = enum.auto()
    BIT = enum.auto()
    ABS = enum.auto()
    TRAP = enum.auto()

    @property
    def fields(self) -> tuple[str, ...]:
        return _FORMAT_FIELDS[self]

    @property
    def has_literal(self) -> bool:
        """True for two-word formats carrying a 32-bit literal."""
        return self in (Format.BIT, Format.ABS)

    @property
    def words(self) -> int:
        return 2 if self.has_literal else 1


#: First-word field layout per format (see module docstring table).
_FORMAT_FIELDS: dict[Format, tuple[str, ...]] = {
    Format.NONE: (),
    Format.R: ("r1",),
    Format.RR: ("r1", "r2"),
    Format.RRR: ("r1", "r2", "r3"),
    Format.RI16: ("r1", "r2", "imm16"),
    Format.I16: ("r1", "imm16"),
    Format.MEM: ("r1", "r2", "imm16"),
    Format.BITR: ("r1", "r2", "r3", "pos", "width"),
    Format.BIT: ("r1", "r2", "pos", "width"),
    Format.ABS: ("r1",),
    Format.TRAP: ("imm8",),
}


def field_mask(high: int, low: int) -> int:
    """Mask covering bits ``high..low`` inclusive."""
    return ((1 << (high - low + 1)) - 1) << low


def encode_word(fmt: Format, opcode: int, **fields: int) -> int:
    """Pack *opcode* and *fields* into the first instruction word.

    Raises :class:`ValueError` for unknown fields, missing fields, or
    out-of-range values; the assembler converts these into source-located
    diagnostics.
    """
    if not 0 <= opcode <= OPCODE_MASK:
        raise ValueError(f"opcode out of range: {opcode:#x}")
    expected = set(fmt.fields)
    supplied = set(fields)
    if supplied != expected:
        missing = expected - supplied
        extra = supplied - expected
        parts = []
        if missing:
            parts.append(f"missing fields {sorted(missing)}")
        if extra:
            parts.append(f"unexpected fields {sorted(extra)}")
        raise ValueError(f"format {fmt.name}: " + ", ".join(parts))

    word = opcode << OPCODE_SHIFT
    for name, value in fields.items():
        high, low = _FIELD_SLOTS[name]
        encoded = value - 1 if name in _BIASED_FIELDS else value
        limit = 1 << (high - low + 1)
        if not 0 <= encoded < limit:
            raise ValueError(
                f"field {name}={value} out of range for format {fmt.name}"
            )
        word |= encoded << low
    return word


def decode_word(fmt: Format, word: int) -> dict[str, int]:
    """Unpack the first instruction word into a field dictionary.

    The inverse of :func:`encode_word`; biased fields come back in
    architectural units (``width`` in 1..32).
    """
    fields: dict[str, int] = {}
    for name in fmt.fields:
        high, low = _FIELD_SLOTS[name]
        raw = (word & field_mask(high, low)) >> low
        fields[name] = raw + 1 if name in _BIASED_FIELDS else raw
    return fields


def opcode_of(word: int) -> int:
    """Extract the opcode byte from an instruction word."""
    return (word >> OPCODE_SHIFT) & OPCODE_MASK


def sign_extend_16(value: int) -> int:
    """Sign-extend a 16-bit immediate to a Python int."""
    value &= 0xFFFF
    return value - 0x1_0000 if value & 0x8000 else value


@dataclass(frozen=True)
class EncodedInstruction:
    """One fully encoded instruction: first word plus optional literal."""

    word: int
    literal: int | None = None

    @property
    def words(self) -> tuple[int, ...]:
        if self.literal is None:
            return (self.word,)
        return (self.word, self.literal & WORD_MASK)

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.words)
