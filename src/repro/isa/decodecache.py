"""Predecoded-instruction cache: decode once per ROM word, not per retire.

The interpreter's hot loop used to re-run opcode extraction, format-field
unpacking and the base-cycle lookup on every retired instruction.  All of
that is a pure function of the instruction word(s) — and test images
execute from read-only ROM — so the work can be done once per distinct
program-counter value and reused for every subsequent retire of that
address (loops, repeated calls, and every later run of the same image).

Beyond fields, each cache entry is bound to a per-opcode **executor
function** drawn from the module-level :data:`EXECUTORS` table — the
Python analogue of a computed-goto dispatch table.  Operands are
precomputed at decode time (register indices, sign/zero-extended
immediates, branch targets, bit-field masks), so the execute stage is
``entry.exec(cpu, entry)``: one dict-free indirect call instead of the
core's ~300-line ``if/elif`` opcode chain.  The chain survives in
:meth:`CpuCore._execute` as the uncached/trap/fault-injection fallback.

:class:`DecodeCache` is *lazy*: an address is decoded the first time the
core fetches it, then memoised.  Laziness matters because images carry
far more words (base functions, trap handlers, embedded software) than a
short directed test ever executes; eager predecode of the whole ROM
would cost more than it saves on the paper's small test cells.
:meth:`DecodeCache.predecode_all` exists for benchmarks and tools that
do want the eager sweep.

Caches only cover addresses inside the read-only region they were built
for (ROM).  RAM/NVM execution — including self-modifying code — misses
the cache and falls back to the core's legacy fetch-decode path, which
reads through the bus every time.

Caches are shared across platforms via :func:`decode_cache_for`, keyed
by the image's content digest: the six platforms of one regression run
the same linked image, so the decode work is paid once per image, not
once per platform.

On top of the per-address entries the cache stitches **superblocks**
(:class:`Superblock`): maximal straight-line runs of pure-register
instructions plus one terminator (a branch, call, trap, memory micro-op,
or interrupt-enable writer).  The core's block runner executes a
superblock body as one fused loop — no per-instruction cache probe,
interrupt probe, or budget check — and chains block-to-block across
taken branches by caching the successor block on the branch's
superblock (validated against the live program counter on every
transition, so dynamic targets like ``RET`` stay correct).  Superblocks
whose entire architectural effect is counting a register down
(``DJNZ rX, .`` self-loops) are flagged as *idle spins* so the core can
fast-forward them analytically.  Like entries, superblocks are pure
functions of the image bytes: the digest key that shares the cache also
invalidates every block when the image changes.

Each superblock additionally carries **observation templates** —
concatenated fetch-event tuples, static retire-trace record templates,
and fetch-wait-folded cycle totals — so the core can execute blocks at
full speed under a bus trace, an instruction trace, or wait-state
charging, replaying a block's observable side effects with bulk ring
appends instead of per-instruction recording.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields as dataclass_fields
from typing import Callable, Mapping

from repro.isa.encoding import decode_word, opcode_of, sign_extend_16
from repro.isa.instructions import Opcode, lookup_opcode
from repro.isa.registers import STACK_POINTER_INDEX, WORD_MASK
from repro.soc.memorymap import TRAP_DIV_ZERO

#: Base cycle cost per opcode (before wait states).  Owned by the ISA
#: layer so decode + cycle lookup are a single cached step.
BASE_CYCLES: dict[int, int] = {}


def _cycles_for(opcode: Opcode) -> int:
    two_cycle = {
        Opcode.LD_W, Opcode.LD_H, Opcode.LD_B,
        Opcode.ST_W, Opcode.ST_H, Opcode.ST_B,
        Opcode.LDABS_D, Opcode.STABS_D, Opcode.LDABS_A, Opcode.STABS_A,
        Opcode.LOAD_D, Opcode.LOAD_A,
        Opcode.PUSH_D, Opcode.PUSH_A, Opcode.POP_D, Opcode.POP_A,
        Opcode.INSERT,
    }
    three_cycle = {
        Opcode.CALL_ABS, Opcode.CALL_IND, Opcode.RET, Opcode.RETI,
        Opcode.TRAP, Opcode.MUL,
    }
    if opcode in two_cycle:
        return 2
    if opcode in three_cycle:
        return 3
    if opcode is Opcode.DIVU:
        return 12
    return 1


for _op in Opcode:
    BASE_CYCLES[int(_op)] = _cycles_for(_op)


#: Memory micro-ops the core can execute on a dedicated fast path (no
#: flag updates, no ALU-fault hook involvement): the decode cache
#: pre-classifies them and precomputes their operands so the execute
#: stage is one register access plus one direct memory access.  Kinds
#: 1..10 are the word-size micro-ops; 11..14 are the byte/halfword
#: loads and stores (zero-extended on load, truncated on store), which
#: only the executor table serves — the core's legacy inline branch
#: predates them and routes them through the ``if/elif`` chain.
MEM_NONE = 0
MEM_LD_W = 1
MEM_ST_W = 2
MEM_PUSH_D = 3
MEM_POP_D = 4
MEM_PUSH_A = 5
MEM_POP_A = 6
MEM_LDABS_D = 7
MEM_LDABS_A = 8
MEM_STABS_D = 9
MEM_STABS_A = 10
MEM_LD_H = 11
MEM_LD_B = 12
MEM_ST_H = 13
MEM_ST_B = 14

#: Last of the word-size kinds the legacy inline branch understands.
MEM_LAST_WORD_KIND = MEM_STABS_A

_MEM_KINDS: dict[Opcode, int] = {
    Opcode.LD_W: MEM_LD_W,
    Opcode.ST_W: MEM_ST_W,
    Opcode.PUSH_D: MEM_PUSH_D,
    Opcode.POP_D: MEM_POP_D,
    Opcode.PUSH_A: MEM_PUSH_A,
    Opcode.POP_A: MEM_POP_A,
    Opcode.LDABS_D: MEM_LDABS_D,
    Opcode.LDABS_A: MEM_LDABS_A,
    Opcode.STABS_D: MEM_STABS_D,
    Opcode.STABS_A: MEM_STABS_A,
    Opcode.LD_H: MEM_LD_H,
    Opcode.LD_B: MEM_LD_B,
    Opcode.ST_H: MEM_ST_H,
    Opcode.ST_B: MEM_ST_B,
}

#: Kinds whose displacement is the sign-extended ``imm16`` (indexed
#: addressing) vs. the absolute literal address.
_MEM_INDEXED_KINDS = frozenset(
    {MEM_LD_W, MEM_ST_W, MEM_LD_H, MEM_LD_B, MEM_ST_H, MEM_ST_B}
)
_MEM_ABSOLUTE_KINDS = frozenset(
    {MEM_LDABS_D, MEM_LDABS_A, MEM_STABS_D, MEM_STABS_A}
)


@dataclass(frozen=True, slots=True)
class DecodedInstruction:
    """One fully decoded instruction, ready for the execute stage.

    ``fields`` is shared across every retire of this address — consumers
    must treat it as read-only.  ``fetch_waits`` is the bus wait-state
    cost a real fetch of this instruction's word(s) would have charged;
    cycle-accurate cores add it so cached and uncached execution retire
    identical cycle counts.

    ``exec`` is the opcode's executor from :data:`EXECUTORS`; the core
    calls ``entry.exec(cpu, entry)`` and gets back the branch-taken
    flag.  Executor operands are precomputed at decode time: ``r1``/
    ``r2``/``r3`` register indices, ``imm_s`` (the sign-extended
    immediate as a signed Python int), ``imm_u`` (the opcode-specific
    unsigned operand: masked immediate, branch target, shift amount,
    bit index, or extract mask), and ``pos``/``width`` for bit-field
    operations.
    """

    opcode: int
    op: Opcode
    mnemonic: str
    fields: Mapping[str, int]
    literal: int | None
    size_bytes: int
    base_cycles: int
    fetch_waits: int
    #: The bus events a real fetch of this instruction would have
    #: recorded — ``("read", pc, 4, word)`` per fetched word.  The core
    #: replays them (``Bus.emit_fetches``) when a bus trace is active,
    #: so the cache can stay enabled under observation.
    fetch_events: tuple[tuple[str, int, int, int], ...] = ()
    #: Memory micro-op classification (``MEM_*``; 0 = execute through
    #: the generic dispatch).  ``mem_disp`` is the sign-extended
    #: displacement (indexed forms) or the absolute address
    #: (LDABS/STABS forms); the register operands are ``r1`` (the
    #: data/address register moved) and ``r2`` (the base register).
    mem_kind: int = MEM_NONE
    mem_disp: int = 0
    #: Executor binding + precomputed operands (see class docstring).
    pc: int = 0
    next_pc: int = 0
    r1: int = 0
    r2: int = 0
    r3: int = 0
    imm_s: int = 0
    imm_u: int = 0
    pos: int = 0
    width: int = 0
    exec: Callable | None = None


_DECODED_FIELDS = tuple(
    field.name for field in dataclass_fields(DecodedInstruction)
)


def _decoded_getstate(self) -> list:
    return [getattr(self, name) for name in _DECODED_FIELDS]


def _unrolled_setstate(names, setattr_form: str):
    """A ``__setstate__`` with one inline store per field (the
    dataclass-``__init__`` codegen trick).  An artifact-store restore
    unpickles thousands of entries and blocks; a Python-level
    ``zip``+``setattr`` loop over 18-20 fields per object was the
    hottest piece of a warm process start."""
    source = "def _setstate(self, state):\n" + "\n".join(
        setattr_form.format(name=name, index=index)
        for index, name in enumerate(names)
    )
    namespace = {"_setattr": object.__setattr__}
    exec(source, namespace)
    return namespace["_setstate"]


# The slot-pickling helpers dataclasses generates for a frozen slots
# class re-resolve ``fields()`` on every object; an artifact-store
# restore unpickles thousands of entries, so bind precomputed versions
# (assigned post-class because ``slots=True`` rebuilds the class and
# installs its own helpers over in-body definitions on 3.11).
DecodedInstruction.__getstate__ = _decoded_getstate
DecodedInstruction.__setstate__ = _unrolled_setstate(
    _DECODED_FIELDS, "    _setattr(self, {name!r}, state[{index}])"
)


# ---------------------------------------------------------------------------
# Executor table — computed-goto-style dispatch targets.
#
# Each executor receives ``(cpu, entry)``, performs the full
# architectural effect of the instruction (including setting ``pc``:
# fall-through first, control flow overrides) and returns the
# branch-taken flag that costs the extra cycle.  The functions must stay
# byte-for-byte equivalent to the ``CpuCore._execute`` chain — that
# chain remains the uncached and fault-injection reference path, and the
# equivalence suite diffs the two.  None of them consult
# ``alu_fault_hook``; the core routes non-memory opcodes through the
# legacy chain when a fault hook is armed.
# ---------------------------------------------------------------------------

_OP_SHL = Opcode.SHL
_OP_SHR = Opcode.SHR
_OP_SAR = Opcode.SAR


def _x_nop(cpu, e):
    cpu.regs.pc = e.next_pc
    return False


def _x_halt(cpu, e):
    cpu.regs.pc = e.next_pc
    cpu.halted = True
    return False


def _x_brk(cpu, e):
    cpu.regs.pc = e.next_pc
    cpu.brk_events.append(e.pc)
    return False


def _x_di(cpu, e):
    cpu.regs.pc = e.next_pc
    cpu.regs.psw.interrupt_enable = False
    return False


def _x_ei(cpu, e):
    cpu.regs.pc = e.next_pc
    cpu.regs.psw.interrupt_enable = True
    return False


def _x_ret(cpu, e):
    cpu.regs.pc = cpu._pop()
    return True


def _x_reti(cpu, e):
    regs = cpu.regs
    regs.psw.value = cpu._pop()
    regs.pc = cpu._pop()
    return True


# -- moves ------------------------------------------------------------------

def _x_mov_dd(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    value = regs.data[e.r2]
    regs.data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_mov_aa(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.address[e.r1] = regs.address[e.r2]
    return False


def _x_mov_da(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.data[e.r1] = regs.address[e.r2]
    return False


def _x_mov_ad(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.address[e.r1] = regs.data[e.r2]
    return False


def _x_load_d(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.data[e.r1] = e.imm_u
    return False


def _x_load_a(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.address[e.r1] = e.imm_u
    return False


def _x_movi(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.data[e.r1] = e.imm_u
    return False


# -- memory micro-ops -------------------------------------------------------

def _x_ld_w(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.data[e.r1] = cpu._read_word_fast(
        (regs.address[e.r2] + e.mem_disp) & WORD_MASK
    )
    return False


def _x_st_w(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    cpu._write_word_fast(
        (regs.address[e.r2] + e.mem_disp) & WORD_MASK, regs.data[e.r1]
    )
    return False


def _x_ld_h(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.data[e.r1] = cpu._read_half_fast(
        (regs.address[e.r2] + e.mem_disp) & WORD_MASK
    )
    return False


def _x_ld_b(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.data[e.r1] = cpu._read_byte_fast(
        (regs.address[e.r2] + e.mem_disp) & WORD_MASK
    )
    return False


def _x_st_h(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    cpu._write_half_fast(
        (regs.address[e.r2] + e.mem_disp) & WORD_MASK, regs.data[e.r1]
    )
    return False


def _x_st_b(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    cpu._write_byte_fast(
        (regs.address[e.r2] + e.mem_disp) & WORD_MASK, regs.data[e.r1]
    )
    return False


def _x_ldabs_d(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.data[e.r1] = cpu._read_word_fast(e.mem_disp)
    return False


def _x_ldabs_a(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.address[e.r1] = cpu._read_word_fast(e.mem_disp)
    return False


def _x_stabs_d(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    cpu._write_word_fast(e.mem_disp, regs.data[e.r1])
    return False


def _x_stabs_a(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    cpu._write_word_fast(e.mem_disp, regs.address[e.r1])
    return False


# -- ALU --------------------------------------------------------------------

def _x_add(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    lhs = data[e.r2]
    rhs = data[e.r3]
    raw = lhs + rhs
    regs.psw.set_add_flags(lhs, rhs, raw)
    data[e.r1] = raw & WORD_MASK
    return False


def _x_sub(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    lhs = data[e.r2]
    rhs = data[e.r3]
    regs.psw.set_sub_flags(lhs, rhs)
    data[e.r1] = (lhs - rhs) & WORD_MASK
    return False


def _x_and(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    value = data[e.r2] & data[e.r3]
    data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_or(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    value = data[e.r2] | data[e.r3]
    data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_xor(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    value = data[e.r2] ^ data[e.r3]
    data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_shl(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    data[e.r1] = cpu._shift(_OP_SHL, data[e.r2], data[e.r3] & 31)
    return False


def _x_shr(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    data[e.r1] = cpu._shift(_OP_SHR, data[e.r2], data[e.r3] & 31)
    return False


def _x_sar(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    data[e.r1] = cpu._shift(_OP_SAR, data[e.r2], data[e.r3] & 31)
    return False


def _x_shli(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    data[e.r1] = cpu._shift(_OP_SHL, data[e.r2], e.imm_u)
    return False


def _x_shri(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    data[e.r1] = cpu._shift(_OP_SHR, data[e.r2], e.imm_u)
    return False


def _x_sari(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    data[e.r1] = cpu._shift(_OP_SAR, data[e.r2], e.imm_u)
    return False


def _x_mul(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    value = (data[e.r2] * data[e.r3]) & WORD_MASK
    data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_not(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    value = ~data[e.r2] & WORD_MASK
    data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_neg(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    rhs = data[e.r2]
    regs.psw.set_sub_flags(0, rhs)
    data[e.r1] = -rhs & WORD_MASK
    return False


def _x_addi(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    lhs = data[e.r2]
    raw = lhs + e.imm_s
    regs.psw.set_add_flags(lhs, e.imm_u, raw)
    data[e.r1] = raw & WORD_MASK
    return False


def _x_andi(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    value = data[e.r2] & e.imm_u
    data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_ori(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    value = data[e.r2] | e.imm_u
    data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_xori(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    value = data[e.r2] ^ e.imm_u
    data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_adda(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.address[e.r1] = (regs.address[e.r2] + e.imm_s) & WORD_MASK
    return False


def _x_divu(cpu, e):
    regs = cpu.regs
    data = regs.data
    regs.pc = e.next_pc
    rhs = data[e.r3]
    if rhs == 0:
        cpu.take_trap(TRAP_DIV_ZERO, e.next_pc)
        return True
    value = data[e.r2] // rhs
    data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_cmp(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.psw.set_sub_flags(regs.data[e.r1], regs.data[e.r2])
    return False


def _x_cmpi(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.psw.set_sub_flags(regs.data[e.r1], e.imm_u)
    return False


# -- bit fields -------------------------------------------------------------

def _x_insert(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    value = cpu._insert(regs.data[e.r2], e.imm_u, e.pos, e.width)
    regs.data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_insertr(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    value = cpu._insert(regs.data[e.r2], regs.data[e.r3], e.pos, e.width)
    regs.data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_extru(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    value = (regs.data[e.r2] >> e.pos) & e.imm_u
    regs.data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_extrs(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    value = (regs.data[e.r2] >> e.pos) & e.imm_u
    if e.imm_s and value & e.imm_s:
        value |= WORD_MASK & ~e.imm_u
    regs.data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_setb(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    value = regs.data[e.r1] | (1 << e.imm_u)
    regs.data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_clrb(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    value = regs.data[e.r1] & ~(1 << e.imm_u)
    regs.data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_tglb(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    value = regs.data[e.r1] ^ (1 << e.imm_u)
    regs.data[e.r1] = value
    regs.psw.set_logic_flags(value)
    return False


def _x_tstb(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.psw.zero = not (regs.data[e.r1] >> e.imm_u) & 1
    return False


# -- control flow -----------------------------------------------------------

def _x_jmp(cpu, e):
    cpu.regs.pc = e.imm_u
    return True


def _x_jz(cpu, e):
    regs = cpu.regs
    if regs.psw.zero:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_jnz(cpu, e):
    regs = cpu.regs
    if not regs.psw.zero:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_jc(cpu, e):
    regs = cpu.regs
    if regs.psw.carry:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_jnc(cpu, e):
    regs = cpu.regs
    if not regs.psw.carry:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_jn(cpu, e):
    regs = cpu.regs
    if regs.psw.negative:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_jnn(cpu, e):
    regs = cpu.regs
    if not regs.psw.negative:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_jv(cpu, e):
    regs = cpu.regs
    if regs.psw.overflow:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_jnv(cpu, e):
    regs = cpu.regs
    if not regs.psw.overflow:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_jge(cpu, e):
    regs = cpu.regs
    psw = regs.psw
    if psw.negative == psw.overflow:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_jlt(cpu, e):
    regs = cpu.regs
    psw = regs.psw
    if psw.negative != psw.overflow:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_jgt(cpu, e):
    regs = cpu.regs
    psw = regs.psw
    if not psw.zero and psw.negative == psw.overflow:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_jle(cpu, e):
    regs = cpu.regs
    psw = regs.psw
    if psw.zero or psw.negative != psw.overflow:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


def _x_call_abs(cpu, e):
    cpu._push(e.next_pc)
    cpu.regs.pc = e.imm_u
    return True


def _x_call_ind(cpu, e):
    cpu._push(e.next_pc)
    regs = cpu.regs
    regs.pc = regs.address[e.r1]
    return True


def _x_djnz(cpu, e):
    regs = cpu.regs
    data = regs.data
    value = (data[e.r1] - 1) & WORD_MASK
    data[e.r1] = value
    regs.psw.set_logic_flags(value)
    if value != 0:
        regs.pc = e.imm_u
        return True
    regs.pc = e.next_pc
    return False


# -- stack (word micro-ops share the direct-buffer accessors) --------------

def _x_push_d(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    addr = regs.address
    sp = (addr[STACK_POINTER_INDEX] - 4) & WORD_MASK
    addr[STACK_POINTER_INDEX] = sp
    cpu._write_word_fast(sp, regs.data[e.r1])
    return False


def _x_push_a(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    addr = regs.address
    value = addr[e.r1]  # before sp update (PUSH sp)
    sp = (addr[STACK_POINTER_INDEX] - 4) & WORD_MASK
    addr[STACK_POINTER_INDEX] = sp
    cpu._write_word_fast(sp, value)
    return False


def _x_pop_d(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    addr = regs.address
    regs.data[e.r1] = cpu._read_word_fast(addr[STACK_POINTER_INDEX])
    addr[STACK_POINTER_INDEX] = (addr[STACK_POINTER_INDEX] + 4) & WORD_MASK
    return False


def _x_pop_a(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    addr = regs.address
    value = cpu._read_word_fast(addr[STACK_POINTER_INDEX])
    addr[STACK_POINTER_INDEX] = (addr[STACK_POINTER_INDEX] + 4) & WORD_MASK
    addr[e.r1] = value
    return False


# -- system -----------------------------------------------------------------

def _x_trap(cpu, e):
    cpu.regs.pc = e.next_pc
    cpu.take_trap(e.imm_u, e.next_pc)
    return True


def _x_rdpsw(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.data[e.r1] = regs.psw.value
    return False


def _x_wrpsw(cpu, e):
    regs = cpu.regs
    regs.pc = e.next_pc
    regs.psw.value = regs.data[e.r1]
    return False


#: Opcode value -> executor: the computed-goto dispatch table.  Every
#: legal opcode has an entry; `_decode` refuses to cache anything that
#: does not (which cannot happen while the assert below holds).
EXECUTORS: dict[int, Callable] = {
    int(Opcode.NOP): _x_nop,
    int(Opcode.HALT): _x_halt,
    int(Opcode.BRK): _x_brk,
    int(Opcode.DI): _x_di,
    int(Opcode.EI): _x_ei,
    int(Opcode.RET): _x_ret,
    int(Opcode.RETI): _x_reti,
    int(Opcode.MOV_DD): _x_mov_dd,
    int(Opcode.MOV_AA): _x_mov_aa,
    int(Opcode.MOV_DA): _x_mov_da,
    int(Opcode.MOV_AD): _x_mov_ad,
    int(Opcode.LOAD_D): _x_load_d,
    int(Opcode.LOAD_A): _x_load_a,
    int(Opcode.MOVI): _x_movi,
    int(Opcode.MOVHI): _x_movi,  # value precomputed; same move shape
    int(Opcode.LD_W): _x_ld_w,
    int(Opcode.LD_H): _x_ld_h,
    int(Opcode.LD_B): _x_ld_b,
    int(Opcode.ST_W): _x_st_w,
    int(Opcode.ST_H): _x_st_h,
    int(Opcode.ST_B): _x_st_b,
    int(Opcode.LDABS_D): _x_ldabs_d,
    int(Opcode.STABS_D): _x_stabs_d,
    int(Opcode.LDABS_A): _x_ldabs_a,
    int(Opcode.STABS_A): _x_stabs_a,
    int(Opcode.ADD): _x_add,
    int(Opcode.SUB): _x_sub,
    int(Opcode.AND): _x_and,
    int(Opcode.OR): _x_or,
    int(Opcode.XOR): _x_xor,
    int(Opcode.SHL): _x_shl,
    int(Opcode.SHR): _x_shr,
    int(Opcode.SAR): _x_sar,
    int(Opcode.MUL): _x_mul,
    int(Opcode.NOT): _x_not,
    int(Opcode.NEG): _x_neg,
    int(Opcode.ADDI): _x_addi,
    int(Opcode.SHLI): _x_shli,
    int(Opcode.SHRI): _x_shri,
    int(Opcode.SARI): _x_sari,
    int(Opcode.ANDI): _x_andi,
    int(Opcode.ORI): _x_ori,
    int(Opcode.XORI): _x_xori,
    int(Opcode.ADDA): _x_adda,
    int(Opcode.DIVU): _x_divu,
    int(Opcode.CMP): _x_cmp,
    int(Opcode.CMPI): _x_cmpi,
    int(Opcode.INSERT): _x_insert,
    int(Opcode.INSERTR): _x_insertr,
    int(Opcode.EXTRU): _x_extru,
    int(Opcode.EXTRS): _x_extrs,
    int(Opcode.SETB): _x_setb,
    int(Opcode.CLRB): _x_clrb,
    int(Opcode.TGLB): _x_tglb,
    int(Opcode.TSTB): _x_tstb,
    int(Opcode.JMP): _x_jmp,
    int(Opcode.JZ): _x_jz,
    int(Opcode.JNZ): _x_jnz,
    int(Opcode.JC): _x_jc,
    int(Opcode.JNC): _x_jnc,
    int(Opcode.JN): _x_jn,
    int(Opcode.JNN): _x_jnn,
    int(Opcode.JV): _x_jv,
    int(Opcode.JNV): _x_jnv,
    int(Opcode.JGE): _x_jge,
    int(Opcode.JLT): _x_jlt,
    int(Opcode.JGT): _x_jgt,
    int(Opcode.JLE): _x_jle,
    int(Opcode.CALL_ABS): _x_call_abs,
    int(Opcode.CALL_IND): _x_call_ind,
    int(Opcode.DJNZ): _x_djnz,
    int(Opcode.PUSH_D): _x_push_d,
    int(Opcode.PUSH_A): _x_push_a,
    int(Opcode.POP_D): _x_pop_d,
    int(Opcode.POP_A): _x_pop_a,
    int(Opcode.TRAP): _x_trap,
    int(Opcode.RDPSW): _x_rdpsw,
    int(Opcode.WRPSW): _x_wrpsw,
}

assert all(int(op) in EXECUTORS for op in Opcode), "executor table incomplete"


# ---------------------------------------------------------------------------
# Superblocks — straight-line fusion over decoded entries.
# ---------------------------------------------------------------------------

#: Opcodes that end a superblock.  Control flow ends a block because the
#: next pc is decided at run time; ``HALT`` because the runner's loop
#: condition must see it; ``EI``/``WRPSW``/``RETI`` because they can
#: turn the interrupt-enable bit on (the runner probes interrupts once
#: per block, which is only sound while no body instruction can arm
#: them); ``DIVU``/``TRAP`` because they can enter a trap handler.
#: Memory micro-ops (``mem_kind != MEM_NONE``) also terminate: a load or
#: store may land on an SFR page, flushing deferred peripheral time,
#: raising interrupt lines, or cutting the block deadline — all of which
#: the runner must re-check before retiring another instruction.
_SB_BARRIER_OPCODES = frozenset(
    int(op)
    for op in (
        Opcode.JMP, Opcode.JZ, Opcode.JNZ, Opcode.JC, Opcode.JNC,
        Opcode.JN, Opcode.JNN, Opcode.JV, Opcode.JNV,
        Opcode.JGE, Opcode.JLT, Opcode.JGT, Opcode.JLE,
        Opcode.CALL_ABS, Opcode.CALL_IND, Opcode.DJNZ,
        Opcode.RET, Opcode.RETI, Opcode.TRAP, Opcode.HALT,
        Opcode.EI, Opcode.WRPSW, Opcode.DIVU,
    )
)

#: Body length cap: bounds formation cost and keeps the fused loop's
#: all-or-nothing budget precheck from degrading deadline granularity.
_SB_MAX_BODY = 64

_DJNZ_OPCODE = int(Opcode.DJNZ)
_JUMP_TAKEN_EXTRA = 1


class Superblock:
    """One straight-line run of decoded instructions plus its terminator.

    ``body`` entries are pure-register operations: no bus access, no
    trap, no control flow, no interrupt-enable writes — executing them
    cannot change anything the block runner's hoisted checks observe,
    which is what makes the fused body loop sound.  ``terminator`` is
    the instruction that ends the block (``None`` when the next address
    is not cacheable and the runner must fall back to the legacy step).

    ``succ_taken``/``succ_fall`` memoise the successor superblock after
    the terminator's taken/fall-through edge.  They are a *prediction*,
    not an invariant: the runner validates ``succ.start`` against the
    live pc on every transition, so shared caches, dynamic branch
    targets and interrupt redirections all stay correct.

    A block that is exactly ``DJNZ rX, .`` (empty body, terminator
    looping to its own start) is an **idle spin**: its only
    architectural effect per taken iteration is ``rX -= 1``, the logic
    flags of the result, and ``spin_cost`` cycles.  ``spin_reg`` holds
    the counter register index (-1 otherwise) so the core can
    fast-forward the loop analytically.

    **Observation templates** (computed once at formation) let the core
    run a block under a bus trace, an instruction trace, or wait-state
    charging without dropping to per-instruction execution:

    - ``fetch_events`` concatenates every body entry's replayed fetch
      events into one tuple, so a traced block emits its whole fetch
      stream with a single bulk ring append;
    - ``trace_tmpl`` / ``trace_tmpl_w`` are the body's retire-trace
      records ``(pc, opcode, mnemonic, cost)`` — all four fields are
      static for body entries (pure-register: no data waits, never a
      taken branch), the ``_w`` variant folding each entry's fetch wait
      states into its cost for cycle-accurate cores;
    - ``body_cycles_w`` / ``spin_cost_w`` fold the static fetch-wait
      cycles into the block totals, so under wait-state charging only
      *data-access* waits are left to charge inline (and only the
      terminator can incur those).

    The folded variants are correct per cache instance because fetch
    waits are a segment property baked into each entry at decode time —
    and :func:`decode_cache_for` keys the registry on the wait-state
    figure, so differently-waited platforms resolve distinct caches and
    therefore distinct, correctly folded blocks.
    """

    __slots__ = (
        "start", "body", "body_count", "body_cycles", "body_cycles_w",
        "terminator", "succ_taken", "succ_fall", "spin_reg", "spin_cost",
        "spin_cost_w", "fetch_events", "trace_tmpl", "trace_tmpl_w",
        "heat", "jit_u", "jit_ot", "jit_ow",
    )

    def __init__(
        self,
        start: int,
        body: tuple[DecodedInstruction, ...],
        terminator: DecodedInstruction | None,
    ):
        self.start = start
        self.body = body
        self.body_count = len(body)
        self.body_cycles = sum(entry.base_cycles for entry in body)
        self.terminator = terminator
        self.succ_taken: Superblock | None = None
        self.succ_fall: Superblock | None = None
        #: JIT hotness counter and compiled-chain variant slots (set by
        #: ``isa/jit.py`` when a chain headed here crosses the replay
        #: threshold): unobserved, observed, observed + wait-charging.
        self.heat = 0
        self.jit_u = None
        self.jit_ot = None
        self.jit_ow = None
        fetch_events: tuple[tuple[str, int, int, int], ...] = ()
        for entry in body:
            fetch_events += entry.fetch_events
        self.fetch_events = fetch_events
        self.trace_tmpl = tuple(
            (entry.pc, entry.opcode, entry.mnemonic, entry.base_cycles)
            for entry in body
        )
        self.trace_tmpl_w = tuple(
            (
                entry.pc,
                entry.opcode,
                entry.mnemonic,
                entry.base_cycles + entry.fetch_waits,
            )
            for entry in body
        )
        self.body_cycles_w = self.body_cycles + sum(
            entry.fetch_waits for entry in body
        )
        if (
            not body
            and terminator is not None
            and terminator.opcode == _DJNZ_OPCODE
            and terminator.imm_u == start
        ):
            self.spin_reg = terminator.r1
            self.spin_cost = terminator.base_cycles + _JUMP_TAKEN_EXTRA
            self.spin_cost_w = self.spin_cost + terminator.fetch_waits
        else:
            self.spin_reg = -1
            self.spin_cost = 0
            self.spin_cost_w = 0

    def __getstate__(self) -> list:
        """Pickle everything (slot order) except the compiled chain
        variants.

        ``jit_u``/``jit_ot``/``jit_ow`` are ``compile()``-generated
        function objects — process-local artifacts that cannot ride a
        pickle.  The artifact store snapshots their *code objects*
        separately via :mod:`marshal` and rebinds (or recompiles) them
        on restore, so dropping them here loses no warmth across a
        process boundary."""
        state = [getattr(self, slot) for slot in self.__slots__]
        jit_base = self.__slots__.index("jit_u")
        state[jit_base : jit_base + 3] = (None, None, None)
        return state


# Same unrolled-stores trick as ``DecodedInstruction`` (bound
# post-class so the generated source can enumerate the slots).
Superblock.__setstate__ = _unrolled_setstate(
    Superblock.__slots__, "    self.{name} = state[{index}]"
)


#: Opcodes whose ``imm_u`` is the sign-extended-and-masked immediate.
_SIGNED_IMM_OPS = frozenset({Opcode.ADDI, Opcode.CMPI})
#: Opcodes whose ``imm_u`` is the raw zero-extended ``imm16``.
_UNSIGNED_IMM_OPS = frozenset({Opcode.ANDI, Opcode.ORI, Opcode.XORI})
#: Opcodes whose ``imm_u`` is ``imm16 & 31`` (shift amounts, bit indices).
_FIVE_BIT_IMM_OPS = frozenset(
    {
        Opcode.SHLI, Opcode.SHRI, Opcode.SARI,
        Opcode.SETB, Opcode.CLRB, Opcode.TGLB, Opcode.TSTB,
    }
)
#: Opcodes whose ``imm_u`` is the masked 32-bit literal (branch target
#: or absolute immediate value).
_LITERAL_OPS = frozenset(
    {
        Opcode.LOAD_D, Opcode.LOAD_A,
        Opcode.JMP, Opcode.JZ, Opcode.JNZ, Opcode.JC, Opcode.JNC,
        Opcode.JN, Opcode.JNN, Opcode.JV, Opcode.JNV,
        Opcode.JGE, Opcode.JLT, Opcode.JGT, Opcode.JLE,
        Opcode.CALL_ABS, Opcode.DJNZ,
    }
)


def _precomputed_operands(
    op: Opcode, fields: Mapping[str, int], literal: int | None
) -> tuple[int, int]:
    """``(imm_s, imm_u)`` for *op* — see :class:`DecodedInstruction`."""
    if op in _LITERAL_OPS:
        return 0, (literal or 0) & WORD_MASK
    if op is Opcode.INSERT:
        return 0, (literal or 0)
    imm16 = fields.get("imm16")
    if imm16 is not None:
        if op is Opcode.MOVI:
            return 0, sign_extend_16(imm16) & WORD_MASK
        if op is Opcode.MOVHI:
            return 0, (imm16 << 16) & WORD_MASK
        if op in _SIGNED_IMM_OPS or op is Opcode.ADDA:
            signed = sign_extend_16(imm16)
            return signed, signed & WORD_MASK
        if op in _UNSIGNED_IMM_OPS:
            return 0, imm16
        if op in _FIVE_BIT_IMM_OPS:
            return 0, imm16 & 31
    if op in (Opcode.EXTRU, Opcode.EXTRS):
        width = fields["width"]
        mask = ((1 << width) - 1) if width < 32 else WORD_MASK
        sign_bit = (
            1 << (width - 1) if op is Opcode.EXTRS and width < 32 else 0
        )
        return sign_bit, mask
    if op is Opcode.TRAP:
        return 0, fields["imm8"]
    return 0, 0


class DecodeCache:
    """Lazy pc -> :class:`DecodedInstruction` map over one image's ROM.

    Shared across platforms (and thread-pool workers) for one image.
    Entries are deterministic, so concurrent use is safe; the miss path
    is locked to avoid duplicate decode work, while the per-retire hit
    path stays lock-free — which makes :attr:`hits` approximate under
    concurrency (telemetry, not semantics).
    """

    __slots__ = ("_entries", "_skip", "_segments", "_miss_lock",
                 "_blocks", "hits", "misses", "jit_chains")

    def __init__(
        self,
        image,
        region_base: int,
        region_end: int,
        wait_states: int = 0,
    ):
        #: (base, end, data, wait_states) per cacheable image segment.
        self._segments: list[tuple[int, int, bytes, int]] = []
        for segment in image.segments:
            if segment.base >= region_end or segment.end <= region_base:
                continue
            self._segments.append(
                (
                    max(segment.base, region_base),
                    min(segment.end, region_end),
                    bytes(segment.data),
                    wait_states,
                )
            )
        self._segments.sort()
        self._entries: dict[int, DecodedInstruction] = {}
        #: pc -> superblock starting at that address (lazy, see
        #: :meth:`block_at`).
        self._blocks: dict[int, Superblock] = {}
        #: Addresses proven non-cacheable (data words, illegal opcodes,
        #: truncated two-word instructions) — never retried.
        self._skip: set[int] = set()
        self._miss_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Compiled JIT chains installed over this cache's blocks.
        self.jit_chains = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, pc: int) -> DecodedInstruction | None:
        """The decoded instruction at *pc*, or ``None`` when the address
        must go through the legacy bus-fetch path."""
        entry = self._entries.get(pc)
        if entry is not None:
            self.hits += 1
            return entry
        if pc in self._skip:
            return None
        with self._miss_lock:
            entry = self._entries.get(pc)
            if entry is not None:
                return entry
            entry = self._decode(pc)
            if entry is None:
                self._skip.add(pc)
                return None
            self._entries[pc] = entry
            self.misses += 1
        return entry

    def block_at(self, pc: int) -> Superblock | None:
        """The superblock starting at *pc*, formed lazily; ``None`` when
        the address itself is not cacheable (the caller falls back to
        the legacy fetch-decode step).

        Formation happens outside the miss lock — entries are decoded
        through the thread-safe :meth:`get` and blocks are deterministic
        functions of the image bytes, so concurrent duplicate formation
        is benign (both threads store an identical block).
        """
        block = self._blocks.get(pc)
        if block is not None:
            return block
        first = self.get(pc)
        if first is None:
            return None
        block = self._form_block(pc, first)
        self._blocks[pc] = block
        return block

    def _form_block(self, pc: int, first: DecodedInstruction) -> Superblock:
        body: list[DecodedInstruction] = []
        entry: DecodedInstruction | None = first
        terminator: DecodedInstruction | None = None
        while entry is not None:
            if (
                entry.mem_kind != MEM_NONE
                or entry.opcode in _SB_BARRIER_OPCODES
            ):
                terminator = entry
                break
            body.append(entry)
            if len(body) >= _SB_MAX_BODY:
                break
            entry = self.get(entry.next_pc)
        return Superblock(pc, tuple(body), terminator)

    def flush_chains(self) -> int:
        """Drop every compiled JIT chain (and reset hotness) over this
        cache's blocks; returns the number of chains dropped.  The
        blocks themselves stay valid — image bytes are immutable — so
        re-heated chains recompile to identical code.  Exposed for the
        registry/invalidation layer and tests; per-run invalidation
        (``cut_block``, epoch flush) needs no per-chain action because
        generated code re-reads the live deadline at every boundary.
        """
        dropped = 0
        for block in self._blocks.values():
            if block.jit_u is not None:
                dropped += 1
            block.jit_u = block.jit_ot = block.jit_ow = None
            block.heat = 0
        self.jit_chains = 0
        return dropped

    def predecode_all(self) -> int:
        """Eagerly decode every aligned word (benchmarks/tools); returns
        the number of cacheable entries."""
        for base, end, _data, _waits in self._segments:
            start = base + (-base % 4)
            for pc in range(start, end - 3, 4):
                self.get(pc)
        return len(self._entries)

    # -- internals ---------------------------------------------------------
    def _word_at(self, pc: int) -> tuple[int, int] | None:
        """(word, wait_states) for the aligned word at *pc*, or None."""
        for base, end, data, waits in self._segments:
            if base <= pc and pc + 4 <= end:
                offset = pc - base
                return (
                    int.from_bytes(data[offset : offset + 4], "little"),
                    waits,
                )
        return None

    def _decode(self, pc: int) -> DecodedInstruction | None:
        if pc % 4:
            return None  # misaligned fetch: legacy path raises the trap
        fetched = self._word_at(pc)
        if fetched is None:
            return None
        word, waits = fetched
        opcode = opcode_of(word)
        try:
            spec = lookup_opcode(opcode)
        except KeyError:
            return None  # illegal opcode: legacy path takes the trap
        literal: int | None = None
        fetch_waits = waits
        fetch_events = (("read", pc, 4, word),)
        if spec.fmt.has_literal:
            second = self._word_at(pc + 4)
            if second is None:
                return None  # truncated literal: legacy path's business
            literal, literal_waits = second
            fetch_waits += literal_waits
            fetch_events += (("read", pc + 4, 4, literal),)
        executor = EXECUTORS.get(opcode)
        if executor is None:
            # No executor bound (an opcode added without a table entry):
            # decline to cache so the address keeps taking the legacy
            # fetch-decode-execute path, which is always complete.
            return None
        op = Opcode(opcode)
        fields = decode_word(spec.fmt, word)
        mem_kind = _MEM_KINDS.get(op, MEM_NONE)
        mem_disp = 0
        if mem_kind in _MEM_INDEXED_KINDS:
            mem_disp = sign_extend_16(fields["imm16"])
        elif mem_kind in _MEM_ABSOLUTE_KINDS:
            mem_disp = literal & WORD_MASK if literal is not None else 0
        imm_s, imm_u = _precomputed_operands(op, fields, literal)
        return DecodedInstruction(
            opcode=opcode,
            op=op,
            mnemonic=spec.mnemonic,
            fields=fields,
            literal=literal,
            size_bytes=spec.size_bytes,
            base_cycles=BASE_CYCLES[opcode],
            fetch_waits=fetch_waits,
            fetch_events=fetch_events,
            mem_kind=mem_kind,
            mem_disp=mem_disp,
            pc=pc,
            next_pc=pc + spec.size_bytes,
            r1=fields.get("r1", 0),
            r2=fields.get("r2", 0),
            r3=fields.get("r3", 0),
            imm_s=imm_s,
            imm_u=imm_u,
            pos=fields.get("pos", 0),
            width=fields.get("width", 0),
            exec=executor,
        )


#: digest-keyed registry so the six platforms of a regression (and many
#: runs of one session) share decode work — predecoded entries,
#: superblocks and compiled JIT chains — for the same linked image.
#: Bounded LRU: the dict's insertion order is recency order (every hit
#: re-inserts), so warm ``BatchSession`` pools cycling through many
#: images evict the coldest cache instead of growing without limit.
_REGISTRY: dict[tuple, DecodeCache] = {}
_REGISTRY_LIMIT = 256
_REGISTRY_LOCK = threading.Lock()
_REGISTRY_EVICTIONS = 0

#: Optional persistent artifact store (duck-typed:
#: ``load_decode_cache(key) -> DecodeCache | None`` and
#: ``save_decode_cache(key, cache) -> bool``, both non-raising) that
#: :func:`decode_cache_for` consults on a registry miss, so a fresh
#: process warm-starts from disk instead of re-paying predecode and
#: superblock formation.  Installed by the CLI/daemon via
#: :func:`set_artifact_store`; ``None`` keeps the registry pure-memory.
_ARTIFACT_STORE = None


def set_artifact_store(store) -> None:
    """Install (or with ``None`` remove) the persistent artifact store
    consulted on registry misses and drained by
    :func:`persist_registry`."""
    global _ARTIFACT_STORE
    _ARTIFACT_STORE = store


def artifact_store():
    """The installed artifact store, or ``None``."""
    return _ARTIFACT_STORE


def _evict_to_limit_locked() -> None:
    """Caller holds :data:`_REGISTRY_LOCK`."""
    global _REGISTRY_EVICTIONS
    while len(_REGISTRY) >= _REGISTRY_LIMIT:
        _REGISTRY.pop(next(iter(_REGISTRY)))
        _REGISTRY_EVICTIONS += 1


def decode_cache_for(
    image,
    region_base: int,
    region_end: int,
    wait_states: int = 0,
) -> DecodeCache:
    """The shared :class:`DecodeCache` for *image* over one ROM region.

    Keyed by the image's content digest plus the region bounds and fetch
    wait states, so distinct derivatives (different memory maps) never
    collide and cycle-accurate platforms see correct fetch costs.
    Resolving a cache marks it most-recently-used; when the registry is
    full the least-recently-resolved cache is evicted (dropping its
    blocks and compiled chains with it).

    With an artifact store installed (:func:`set_artifact_store`), a
    registry miss first tries the store: a hit restores the persisted
    predecode/superblock/JIT state and the fresh process skips the cold
    start entirely.  Store failures of any kind fall through to a
    normal cold build — the store degrades, it never breaks a run.
    """
    key = (image.digest(), region_base, region_end, wait_states)
    with _REGISTRY_LOCK:
        cache = _REGISTRY.pop(key, None)
        if cache is None:
            if _ARTIFACT_STORE is not None:
                cache = _ARTIFACT_STORE.load_decode_cache(key)
            if cache is None:
                cache = DecodeCache(
                    image, region_base, region_end, wait_states
                )
            _evict_to_limit_locked()
        _REGISTRY[key] = cache
    return cache


def install_cache(key: tuple, cache: DecodeCache) -> DecodeCache:
    """Register a restored cache under *key* (boot-time rehydration).

    A live registry entry wins over the restored one — the in-memory
    cache may hold state newer than the snapshot — so installing is
    idempotent and never regresses warmth.  Returns the cache that is
    registered after the call."""
    with _REGISTRY_LOCK:
        existing = _REGISTRY.pop(key, None)
        if existing is not None:
            _REGISTRY[key] = existing
            return existing
        _evict_to_limit_locked()
        _REGISTRY[key] = cache
        return cache


def persist_registry() -> int:
    """Save every registered cache to the installed artifact store;
    returns how many snapshots were written (0 without a store).

    The store skips byte-identical re-writes via a cheap content stamp,
    so calling this after every regression costs one stat-sized check
    per warm image, not one pickle."""
    store = _ARTIFACT_STORE
    if store is None:
        return 0
    with _REGISTRY_LOCK:
        items = list(_REGISTRY.items())
    saved = 0
    for key, cache in items:
        if store.save_decode_cache(key, cache):
            saved += 1
    return saved


def registry_stats() -> dict[str, int]:
    """Registry occupancy gauges for ``stats()`` surfaces."""
    return {
        "registry_size": len(_REGISTRY),
        "registry_evictions": _REGISTRY_EVICTIONS,
    }


class RegistryReset(int):
    """:func:`reset_registry`'s return: the dropped-cache count (an
    ``int``, for existing callers) that also carries the eviction count
    the reset zeroed."""

    def __new__(cls, dropped: int, evictions: int):
        self = super().__new__(cls, dropped)
        self.evictions = evictions
        return self


def reset_registry() -> RegistryReset:
    """Drop every registered cache; returns how many were discarded
    (with the zeroed eviction count on ``.evictions``).

    Benchmark/test hook: the registry is what makes the second run of
    an image warm (predecode, superblocks, compiled chains all live
    here), so an honest cold-start measurement must clear it between
    samples — including the :func:`registry_stats` eviction counter,
    which would otherwise report a previous sample's evictions against
    the fresh registry.  Production code never calls this."""
    global _REGISTRY_EVICTIONS
    with _REGISTRY_LOCK:
        dropped = len(_REGISTRY)
        evictions = _REGISTRY_EVICTIONS
        _REGISTRY.clear()
        _REGISTRY_EVICTIONS = 0
        return RegistryReset(dropped, evictions)
