"""Predecoded-instruction cache: decode once per ROM word, not per retire.

The interpreter's hot loop used to re-run opcode extraction, format-field
unpacking and the base-cycle lookup on every retired instruction.  All of
that is a pure function of the instruction word(s) — and test images
execute from read-only ROM — so the work can be done once per distinct
program-counter value and reused for every subsequent retire of that
address (loops, repeated calls, and every later run of the same image).

:class:`DecodeCache` is *lazy*: an address is decoded the first time the
core fetches it, then memoised.  Laziness matters because images carry
far more words (base functions, trap handlers, embedded software) than a
short directed test ever executes; eager predecode of the whole ROM
would cost more than it saves on the paper's small test cells.
:meth:`DecodeCache.predecode_all` exists for benchmarks and tools that
do want the eager sweep.

Caches only cover addresses inside the read-only region they were built
for (ROM).  RAM/NVM execution — including self-modifying code — misses
the cache and falls back to the core's legacy fetch-decode path, which
reads through the bus every time.

Caches are shared across platforms via :func:`decode_cache_for`, keyed
by the image's content digest: the six platforms of one regression run
the same linked image, so the decode work is paid once per image, not
once per platform.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Mapping

from repro.isa.encoding import decode_word, opcode_of, sign_extend_16
from repro.isa.instructions import Opcode, lookup_opcode
from repro.isa.registers import WORD_MASK

#: Base cycle cost per opcode (before wait states).  Owned by the ISA
#: layer so decode + cycle lookup are a single cached step.
BASE_CYCLES: dict[int, int] = {}


def _cycles_for(opcode: Opcode) -> int:
    two_cycle = {
        Opcode.LD_W, Opcode.LD_H, Opcode.LD_B,
        Opcode.ST_W, Opcode.ST_H, Opcode.ST_B,
        Opcode.LDABS_D, Opcode.STABS_D, Opcode.LDABS_A, Opcode.STABS_A,
        Opcode.LOAD_D, Opcode.LOAD_A,
        Opcode.PUSH_D, Opcode.PUSH_A, Opcode.POP_D, Opcode.POP_A,
        Opcode.INSERT,
    }
    three_cycle = {
        Opcode.CALL_ABS, Opcode.CALL_IND, Opcode.RET, Opcode.RETI,
        Opcode.TRAP, Opcode.MUL,
    }
    if opcode in two_cycle:
        return 2
    if opcode in three_cycle:
        return 3
    if opcode is Opcode.DIVU:
        return 12
    return 1


for _op in Opcode:
    BASE_CYCLES[int(_op)] = _cycles_for(_op)


#: Word-size memory micro-ops the core executes on a dedicated fast
#: path (no flag updates, no ALU-fault hook involvement): the decode
#: cache pre-classifies them and precomputes their operands so the
#: execute stage is one register access plus one word bus access.
MEM_NONE = 0
MEM_LD_W = 1
MEM_ST_W = 2
MEM_PUSH_D = 3
MEM_POP_D = 4
MEM_PUSH_A = 5
MEM_POP_A = 6
MEM_LDABS_D = 7
MEM_LDABS_A = 8
MEM_STABS_D = 9
MEM_STABS_A = 10

_MEM_KINDS: dict[Opcode, int] = {
    Opcode.LD_W: MEM_LD_W,
    Opcode.ST_W: MEM_ST_W,
    Opcode.PUSH_D: MEM_PUSH_D,
    Opcode.POP_D: MEM_POP_D,
    Opcode.PUSH_A: MEM_PUSH_A,
    Opcode.POP_A: MEM_POP_A,
    Opcode.LDABS_D: MEM_LDABS_D,
    Opcode.LDABS_A: MEM_LDABS_A,
    Opcode.STABS_D: MEM_STABS_D,
    Opcode.STABS_A: MEM_STABS_A,
}


@dataclass(frozen=True)
class DecodedInstruction:
    """One fully decoded instruction, ready for the execute stage.

    ``fields`` is shared across every retire of this address — consumers
    must treat it as read-only.  ``fetch_waits`` is the bus wait-state
    cost a real fetch of this instruction's word(s) would have charged;
    cycle-accurate cores add it so cached and uncached execution retire
    identical cycle counts.
    """

    opcode: int
    op: Opcode
    mnemonic: str
    fields: Mapping[str, int]
    literal: int | None
    size_bytes: int
    base_cycles: int
    fetch_waits: int
    #: The bus events a real fetch of this instruction would have
    #: recorded — ``("read", pc, 4, word)`` per fetched word.  The core
    #: replays them (``Bus.emit_fetches``) when a bus trace is active,
    #: so the cache can stay enabled under observation.
    fetch_events: tuple[tuple[str, int, int, int], ...] = ()
    #: Memory micro-op classification (``MEM_*``; 0 = execute through
    #: the generic dispatch chain) with precomputed operands:
    #: ``mem_r1`` the data/address register moved, ``mem_r2`` the base
    #: address register, ``mem_disp`` the sign-extended displacement
    #: (indexed forms) or the absolute address (LDABS/STABS forms).
    mem_kind: int = MEM_NONE
    mem_r1: int = 0
    mem_r2: int = 0
    mem_disp: int = 0


class DecodeCache:
    """Lazy pc -> :class:`DecodedInstruction` map over one image's ROM.

    Shared across platforms (and thread-pool workers) for one image.
    Entries are deterministic, so concurrent use is safe; the miss path
    is locked to avoid duplicate decode work, while the per-retire hit
    path stays lock-free — which makes :attr:`hits` approximate under
    concurrency (telemetry, not semantics).
    """

    __slots__ = ("_entries", "_skip", "_segments", "_miss_lock",
                 "hits", "misses")

    def __init__(
        self,
        image,
        region_base: int,
        region_end: int,
        wait_states: int = 0,
    ):
        #: (base, end, data, wait_states) per cacheable image segment.
        self._segments: list[tuple[int, int, bytes, int]] = []
        for segment in image.segments:
            if segment.base >= region_end or segment.end <= region_base:
                continue
            self._segments.append(
                (
                    max(segment.base, region_base),
                    min(segment.end, region_end),
                    bytes(segment.data),
                    wait_states,
                )
            )
        self._segments.sort()
        self._entries: dict[int, DecodedInstruction] = {}
        #: Addresses proven non-cacheable (data words, illegal opcodes,
        #: truncated two-word instructions) — never retried.
        self._skip: set[int] = set()
        self._miss_lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, pc: int) -> DecodedInstruction | None:
        """The decoded instruction at *pc*, or ``None`` when the address
        must go through the legacy bus-fetch path."""
        entry = self._entries.get(pc)
        if entry is not None:
            self.hits += 1
            return entry
        if pc in self._skip:
            return None
        with self._miss_lock:
            entry = self._entries.get(pc)
            if entry is not None:
                return entry
            entry = self._decode(pc)
            if entry is None:
                self._skip.add(pc)
                return None
            self._entries[pc] = entry
            self.misses += 1
        return entry

    def predecode_all(self) -> int:
        """Eagerly decode every aligned word (benchmarks/tools); returns
        the number of cacheable entries."""
        for base, end, _data, _waits in self._segments:
            start = base + (-base % 4)
            for pc in range(start, end - 3, 4):
                self.get(pc)
        return len(self._entries)

    # -- internals ---------------------------------------------------------
    def _word_at(self, pc: int) -> tuple[int, int] | None:
        """(word, wait_states) for the aligned word at *pc*, or None."""
        for base, end, data, waits in self._segments:
            if base <= pc and pc + 4 <= end:
                offset = pc - base
                return (
                    int.from_bytes(data[offset : offset + 4], "little"),
                    waits,
                )
        return None

    def _decode(self, pc: int) -> DecodedInstruction | None:
        if pc % 4:
            return None  # misaligned fetch: legacy path raises the trap
        fetched = self._word_at(pc)
        if fetched is None:
            return None
        word, waits = fetched
        opcode = opcode_of(word)
        try:
            spec = lookup_opcode(opcode)
        except KeyError:
            return None  # illegal opcode: legacy path takes the trap
        literal: int | None = None
        fetch_waits = waits
        fetch_events = (("read", pc, 4, word),)
        if spec.fmt.has_literal:
            second = self._word_at(pc + 4)
            if second is None:
                return None  # truncated literal: legacy path's business
            literal, literal_waits = second
            fetch_waits += literal_waits
            fetch_events += (("read", pc + 4, 4, literal),)
        op = Opcode(opcode)
        fields = decode_word(spec.fmt, word)
        mem_kind = _MEM_KINDS.get(op, MEM_NONE)
        mem_disp = 0
        if mem_kind in (MEM_LD_W, MEM_ST_W):
            mem_disp = sign_extend_16(fields["imm16"])
        elif mem_kind >= MEM_LDABS_D:
            mem_disp = literal & WORD_MASK if literal is not None else 0
        return DecodedInstruction(
            opcode=opcode,
            op=op,
            mnemonic=spec.mnemonic,
            fields=fields,
            literal=literal,
            size_bytes=spec.size_bytes,
            base_cycles=BASE_CYCLES[opcode],
            fetch_waits=fetch_waits,
            fetch_events=fetch_events,
            mem_kind=mem_kind,
            mem_r1=fields.get("r1", 0),
            mem_r2=fields.get("r2", 0),
            mem_disp=mem_disp,
        )


#: digest-keyed registry so the six platforms of a regression (and many
#: runs of one session) share decode work for the same linked image.
_REGISTRY: dict[tuple, DecodeCache] = {}
_REGISTRY_LIMIT = 256


def decode_cache_for(
    image,
    region_base: int,
    region_end: int,
    wait_states: int = 0,
) -> DecodeCache:
    """The shared :class:`DecodeCache` for *image* over one ROM region.

    Keyed by the image's content digest plus the region bounds and fetch
    wait states, so distinct derivatives (different memory maps) never
    collide and cycle-accurate platforms see correct fetch costs.
    """
    key = (image.digest(), region_base, region_end, wait_states)
    cache = _REGISTRY.get(key)
    if cache is None:
        if len(_REGISTRY) >= _REGISTRY_LIMIT:
            _REGISTRY.pop(next(iter(_REGISTRY)))
        cache = DecodeCache(image, region_base, region_end, wait_states)
        _REGISTRY[key] = cache
    return cache
