"""The SC88 opcode table.

Each machine operation is described by one :class:`InstructionSpec` giving
its surface mnemonic, binary opcode, word :class:`~repro.isa.encoding.Format`
and operand signature.  Several surface mnemonics are *overloaded* — e.g.
``LOAD`` accepts a data or an address register destination and either an
immediate or an absolute memory source, exactly as the paper's examples
use it (``LOAD CallAddr, ES_Init_Register`` loads a symbol's address into
an address register).  Overloads map to distinct opcodes; the assembler
picks the spec whose operand pattern matches.

Operand kinds double as the contract between the parser and the encoder:
each operand is routed to the encoding slot named in the spec's
``slots`` tuple (``r1``/``r2``/``r3``/``imm16``/``literal``/``pos``/
``width``/``imm8``/``mem``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.encoding import Format


class OperandKind(enum.Enum):
    """Operand categories as seen by the assembler's matcher."""

    DREG = "data register"
    AREG = "address register"
    IMM16S = "signed 16-bit immediate"
    IMM16U = "unsigned 16-bit immediate"
    IMM32 = "32-bit immediate"
    POS = "bit position (0..31)"
    WIDTH = "field width (1..32)"
    MEMIND = "register-indirect memory operand"
    MEMABS = "absolute memory operand"
    TRAPNUM = "trap number (0..255)"


class Opcode(enum.IntEnum):
    """Binary opcode values (first-word bits [31:24])."""

    NOP = 0x00
    HALT = 0x01
    BRK = 0x02
    DI = 0x03
    EI = 0x04
    RET = 0x05
    RETI = 0x06

    MOV_DD = 0x10
    MOV_AA = 0x11
    MOV_DA = 0x12
    MOV_AD = 0x13
    LOAD_D = 0x14
    LOAD_A = 0x15
    MOVI = 0x16
    MOVHI = 0x17

    LD_W = 0x20
    LD_H = 0x21
    LD_B = 0x22
    ST_W = 0x23
    ST_H = 0x24
    ST_B = 0x25
    LDABS_D = 0x26
    STABS_D = 0x27
    LDABS_A = 0x28
    STABS_A = 0x29

    ADD = 0x30
    SUB = 0x31
    AND = 0x32
    OR = 0x33
    XOR = 0x34
    SHL = 0x35
    SHR = 0x36
    SAR = 0x37
    MUL = 0x38
    NOT = 0x39
    NEG = 0x3A
    ADDI = 0x3B
    SHLI = 0x3C
    SHRI = 0x3D
    SARI = 0x3E
    ANDI = 0x3F
    ORI = 0x40
    XORI = 0x41
    ADDA = 0x42
    DIVU = 0x43
    CMP = 0x44
    CMPI = 0x45

    INSERT = 0x50
    INSERTR = 0x51
    EXTRU = 0x52
    EXTRS = 0x53
    SETB = 0x54
    CLRB = 0x55
    TGLB = 0x56
    TSTB = 0x57

    JMP = 0x60
    JZ = 0x61
    JNZ = 0x62
    JC = 0x63
    JNC = 0x64
    JN = 0x65
    JNN = 0x66
    JV = 0x67
    JNV = 0x68
    JGE = 0x69
    JLT = 0x6A
    JGT = 0x6B
    JLE = 0x6C
    CALL_ABS = 0x6D
    CALL_IND = 0x6E
    DJNZ = 0x6F

    PUSH_D = 0x70
    PUSH_A = 0x71
    POP_D = 0x72
    POP_A = 0x73

    TRAP = 0x78
    RDPSW = 0x79
    WRPSW = 0x7A


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one machine operation."""

    name: str
    mnemonic: str
    opcode: Opcode
    fmt: Format
    operands: tuple[OperandKind, ...]
    slots: tuple[str, ...]
    description: str
    sets_flags: str = ""

    def __post_init__(self) -> None:
        if len(self.operands) != len(self.slots):
            raise ValueError(f"{self.name}: operands/slots length mismatch")

    @property
    def words(self) -> int:
        return self.fmt.words

    @property
    def size_bytes(self) -> int:
        return 4 * self.words


_D = OperandKind.DREG
_A = OperandKind.AREG
_I16S = OperandKind.IMM16S
_I16U = OperandKind.IMM16U
_I32 = OperandKind.IMM32
_POS = OperandKind.POS
_WID = OperandKind.WIDTH
_MI = OperandKind.MEMIND
_MA = OperandKind.MEMABS
_TN = OperandKind.TRAPNUM


def _spec(
    name: str,
    opcode: Opcode,
    fmt: Format,
    operands: tuple[OperandKind, ...],
    slots: tuple[str, ...],
    description: str,
    sets_flags: str = "",
    mnemonic: str | None = None,
) -> InstructionSpec:
    surface = mnemonic if mnemonic is not None else name.split(".")[0]
    return InstructionSpec(
        name=name,
        mnemonic=surface,
        opcode=opcode,
        fmt=fmt,
        operands=operands,
        slots=slots,
        description=description,
        sets_flags=sets_flags,
    )


#: Every machine operation, keyed by unique spec name.
OPCODE_TABLE: dict[str, InstructionSpec] = {
    spec.name: spec
    for spec in [
        # -- no-operand control ------------------------------------------
        _spec("NOP", Opcode.NOP, Format.NONE, (), (), "no operation"),
        _spec(
            "HALT",
            Opcode.HALT,
            Format.NONE,
            (),
            (),
            "stop execution; d0 carries the result signature",
        ),
        _spec("BRK", Opcode.BRK, Format.NONE, (), (), "breakpoint event"),
        _spec("DI", Opcode.DI, Format.NONE, (), (), "disable interrupts"),
        _spec("EI", Opcode.EI, Format.NONE, (), (), "enable interrupts"),
        _spec(
            "RET",
            Opcode.RET,
            Format.NONE,
            (),
            (),
            "return: pop PC from the stack",
            mnemonic="RET",
        ),
        _spec(
            "RETURN",
            Opcode.RET,
            Format.NONE,
            (),
            (),
            "alias of RET (paper spelling)",
            mnemonic="RETURN",
        ),
        _spec(
            "RETI",
            Opcode.RETI,
            Format.NONE,
            (),
            (),
            "return from interrupt: pop PSW then PC",
        ),
        # -- moves ---------------------------------------------------------
        _spec(
            "MOV.DD",
            Opcode.MOV_DD,
            Format.RR,
            (_D, _D),
            ("r1", "r2"),
            "rd <- rs (data to data)",
            "ZN",
            mnemonic="MOV",
        ),
        _spec(
            "MOV.AA",
            Opcode.MOV_AA,
            Format.RR,
            (_A, _A),
            ("r1", "r2"),
            "ad <- as (address to address)",
            mnemonic="MOV",
        ),
        _spec(
            "MOV.DA",
            Opcode.MOV_DA,
            Format.RR,
            (_D, _A),
            ("r1", "r2"),
            "rd <- as (address to data)",
            mnemonic="MOV",
        ),
        _spec(
            "MOV.AD",
            Opcode.MOV_AD,
            Format.RR,
            (_A, _D),
            ("r1", "r2"),
            "ad <- rs (data to address)",
            mnemonic="MOV",
        ),
        _spec(
            "LOAD.D",
            Opcode.LOAD_D,
            Format.ABS,
            (_D, _I32),
            ("r1", "literal"),
            "rd <- imm32 (immediate or symbol address)",
            mnemonic="LOAD",
        ),
        _spec(
            "LOAD.A",
            Opcode.LOAD_A,
            Format.ABS,
            (_A, _I32),
            ("r1", "literal"),
            "ad <- imm32 (immediate or symbol address)",
            mnemonic="LOAD",
        ),
        _spec(
            "MOVI",
            Opcode.MOVI,
            Format.I16,
            (_D, _I16S),
            ("r1", "imm16"),
            "rd <- sign-extended imm16",
        ),
        _spec(
            "MOVHI",
            Opcode.MOVHI,
            Format.I16,
            (_D, _I16U),
            ("r1", "imm16"),
            "rd <- imm16 << 16",
        ),
        # -- memory ----------------------------------------------------------
        _spec(
            "LD.W",
            Opcode.LD_W,
            Format.MEM,
            (_D, _MI),
            ("r1", "mem"),
            "rd <- word at [aN + simm16]",
            mnemonic="LD.W",
        ),
        _spec(
            "LD.H",
            Opcode.LD_H,
            Format.MEM,
            (_D, _MI),
            ("r1", "mem"),
            "rd <- zero-extended halfword at [aN + simm16]",
            mnemonic="LD.H",
        ),
        _spec(
            "LD.B",
            Opcode.LD_B,
            Format.MEM,
            (_D, _MI),
            ("r1", "mem"),
            "rd <- zero-extended byte at [aN + simm16]",
            mnemonic="LD.B",
        ),
        _spec(
            "ST.W",
            Opcode.ST_W,
            Format.MEM,
            (_MI, _D),
            ("mem", "r1"),
            "word at [aN + simm16] <- rs",
            mnemonic="ST.W",
        ),
        _spec(
            "ST.H",
            Opcode.ST_H,
            Format.MEM,
            (_MI, _D),
            ("mem", "r1"),
            "halfword at [aN + simm16] <- rs[15:0]",
            mnemonic="ST.H",
        ),
        _spec(
            "ST.B",
            Opcode.ST_B,
            Format.MEM,
            (_MI, _D),
            ("mem", "r1"),
            "byte at [aN + simm16] <- rs[7:0]",
            mnemonic="ST.B",
        ),
        _spec(
            "LOAD.MEMD",
            Opcode.LDABS_D,
            Format.ABS,
            (_D, _MA),
            ("r1", "literal"),
            "rd <- word at absolute address",
            mnemonic="LOAD",
        ),
        _spec(
            "STORE.D",
            Opcode.STABS_D,
            Format.ABS,
            (_MA, _D),
            ("literal", "r1"),
            "word at absolute address <- rs (paper's STORE [ADDR], reg)",
            mnemonic="STORE",
        ),
        _spec(
            "LOAD.MEMA",
            Opcode.LDABS_A,
            Format.ABS,
            (_A, _MA),
            ("r1", "literal"),
            "ad <- word at absolute address",
            mnemonic="LOAD",
        ),
        _spec(
            "STORE.A",
            Opcode.STABS_A,
            Format.ABS,
            (_MA, _A),
            ("literal", "r1"),
            "word at absolute address <- as",
            mnemonic="STORE",
        ),
        # -- ALU -------------------------------------------------------------
        _spec(
            "ADD",
            Opcode.ADD,
            Format.RRR,
            (_D, _D, _D),
            ("r1", "r2", "r3"),
            "rd <- rs1 + rs2",
            "CZNV",
        ),
        _spec(
            "SUB",
            Opcode.SUB,
            Format.RRR,
            (_D, _D, _D),
            ("r1", "r2", "r3"),
            "rd <- rs1 - rs2",
            "CZNV",
        ),
        _spec(
            "AND",
            Opcode.AND,
            Format.RRR,
            (_D, _D, _D),
            ("r1", "r2", "r3"),
            "rd <- rs1 & rs2",
            "ZN",
        ),
        _spec(
            "OR",
            Opcode.OR,
            Format.RRR,
            (_D, _D, _D),
            ("r1", "r2", "r3"),
            "rd <- rs1 | rs2",
            "ZN",
        ),
        _spec(
            "XOR",
            Opcode.XOR,
            Format.RRR,
            (_D, _D, _D),
            ("r1", "r2", "r3"),
            "rd <- rs1 ^ rs2",
            "ZN",
        ),
        _spec(
            "SHL",
            Opcode.SHL,
            Format.RRR,
            (_D, _D, _D),
            ("r1", "r2", "r3"),
            "rd <- rs1 << (rs2 & 31)",
            "CZN",
        ),
        _spec(
            "SHR",
            Opcode.SHR,
            Format.RRR,
            (_D, _D, _D),
            ("r1", "r2", "r3"),
            "rd <- rs1 >> (rs2 & 31), logical",
            "CZN",
        ),
        _spec(
            "SAR",
            Opcode.SAR,
            Format.RRR,
            (_D, _D, _D),
            ("r1", "r2", "r3"),
            "rd <- rs1 >> (rs2 & 31), arithmetic",
            "CZN",
        ),
        _spec(
            "MUL",
            Opcode.MUL,
            Format.RRR,
            (_D, _D, _D),
            ("r1", "r2", "r3"),
            "rd <- (rs1 * rs2)[31:0]",
            "ZN",
        ),
        _spec(
            "NOT",
            Opcode.NOT,
            Format.RR,
            (_D, _D),
            ("r1", "r2"),
            "rd <- ~rs",
            "ZN",
        ),
        _spec(
            "NEG",
            Opcode.NEG,
            Format.RR,
            (_D, _D),
            ("r1", "r2"),
            "rd <- -rs (two's complement)",
            "CZNV",
        ),
        _spec(
            "ADDI",
            Opcode.ADDI,
            Format.RI16,
            (_D, _D, _I16S),
            ("r1", "r2", "imm16"),
            "rd <- rs + sign-extended imm16",
            "CZNV",
        ),
        _spec(
            "SHLI",
            Opcode.SHLI,
            Format.RI16,
            (_D, _D, _I16U),
            ("r1", "r2", "imm16"),
            "rd <- rs << (imm & 31)",
            "CZN",
        ),
        _spec(
            "SHRI",
            Opcode.SHRI,
            Format.RI16,
            (_D, _D, _I16U),
            ("r1", "r2", "imm16"),
            "rd <- rs >> (imm & 31), logical",
            "CZN",
        ),
        _spec(
            "SARI",
            Opcode.SARI,
            Format.RI16,
            (_D, _D, _I16U),
            ("r1", "r2", "imm16"),
            "rd <- rs >> (imm & 31), arithmetic",
            "CZN",
        ),
        _spec(
            "ANDI",
            Opcode.ANDI,
            Format.RI16,
            (_D, _D, _I16U),
            ("r1", "r2", "imm16"),
            "rd <- rs & zero-extended imm16",
            "ZN",
        ),
        _spec(
            "ORI",
            Opcode.ORI,
            Format.RI16,
            (_D, _D, _I16U),
            ("r1", "r2", "imm16"),
            "rd <- rs | zero-extended imm16",
            "ZN",
        ),
        _spec(
            "XORI",
            Opcode.XORI,
            Format.RI16,
            (_D, _D, _I16U),
            ("r1", "r2", "imm16"),
            "rd <- rs ^ zero-extended imm16",
            "ZN",
        ),
        _spec(
            "ADDA",
            Opcode.ADDA,
            Format.RI16,
            (_A, _A, _I16S),
            ("r1", "r2", "imm16"),
            "ad <- as + sign-extended imm16 (address arithmetic)",
        ),
        _spec(
            "DIVU",
            Opcode.DIVU,
            Format.RRR,
            (_D, _D, _D),
            ("r1", "r2", "r3"),
            "rd <- rs1 / rs2 unsigned; divide-by-zero raises trap 1",
            "ZN",
        ),
        _spec(
            "CMP",
            Opcode.CMP,
            Format.RR,
            (_D, _D),
            ("r1", "r2"),
            "flags <- rs1 - rs2 (no register write)",
            "CZNV",
        ),
        _spec(
            "CMPI",
            Opcode.CMPI,
            Format.I16,
            (_D, _I16S),
            ("r1", "imm16"),
            "flags <- rs - sign-extended imm16",
            "CZNV",
        ),
        # -- bit fields (the Figure 6 workhorses) ------------------------------
        _spec(
            "INSERT",
            Opcode.INSERT,
            Format.BIT,
            (_D, _D, _I32, _POS, _WID),
            ("r1", "r2", "literal", "pos", "width"),
            "rd <- rs with bits [pos+width-1:pos] replaced by imm value",
            "ZN",
        ),
        _spec(
            "INSERTR",
            Opcode.INSERTR,
            Format.BITR,
            (_D, _D, _D, _POS, _WID),
            ("r1", "r2", "r3", "pos", "width"),
            "rd <- rs with bits [pos+width-1:pos] replaced by rv",
            "ZN",
        ),
        _spec(
            "EXTRU",
            Opcode.EXTRU,
            Format.BITR,
            (_D, _D, _POS, _WID),
            ("r1", "r2", "pos", "width"),
            "rd <- zero-extended bits [pos+width-1:pos] of rs",
            "ZN",
        ),
        _spec(
            "EXTRS",
            Opcode.EXTRS,
            Format.BITR,
            (_D, _D, _POS, _WID),
            ("r1", "r2", "pos", "width"),
            "rd <- sign-extended bits [pos+width-1:pos] of rs",
            "ZN",
        ),
        _spec(
            "SETB",
            Opcode.SETB,
            Format.I16,
            (_D, _I16U),
            ("r1", "imm16"),
            "set bit (imm & 31) of rd",
            "ZN",
        ),
        _spec(
            "CLRB",
            Opcode.CLRB,
            Format.I16,
            (_D, _I16U),
            ("r1", "imm16"),
            "clear bit (imm & 31) of rd",
            "ZN",
        ),
        _spec(
            "TGLB",
            Opcode.TGLB,
            Format.I16,
            (_D, _I16U),
            ("r1", "imm16"),
            "toggle bit (imm & 31) of rd",
            "ZN",
        ),
        _spec(
            "TSTB",
            Opcode.TSTB,
            Format.I16,
            (_D, _I16U),
            ("r1", "imm16"),
            "Z <- not bit (imm & 31) of rs",
            "Z",
        ),
        # -- control flow ------------------------------------------------------
        _spec(
            "JMP",
            Opcode.JMP,
            Format.ABS,
            (_I32,),
            ("literal",),
            "PC <- target",
        ),
        _spec("JZ", Opcode.JZ, Format.ABS, (_I32,), ("literal",), "jump if Z"),
        _spec(
            "JNZ", Opcode.JNZ, Format.ABS, (_I32,), ("literal",), "jump if !Z"
        ),
        _spec("JC", Opcode.JC, Format.ABS, (_I32,), ("literal",), "jump if C"),
        _spec(
            "JNC", Opcode.JNC, Format.ABS, (_I32,), ("literal",), "jump if !C"
        ),
        _spec("JN", Opcode.JN, Format.ABS, (_I32,), ("literal",), "jump if N"),
        _spec(
            "JNN", Opcode.JNN, Format.ABS, (_I32,), ("literal",), "jump if !N"
        ),
        _spec("JV", Opcode.JV, Format.ABS, (_I32,), ("literal",), "jump if V"),
        _spec(
            "JNV", Opcode.JNV, Format.ABS, (_I32,), ("literal",), "jump if !V"
        ),
        _spec(
            "JGE",
            Opcode.JGE,
            Format.ABS,
            (_I32,),
            ("literal",),
            "jump if signed >= (N == V)",
        ),
        _spec(
            "JLT",
            Opcode.JLT,
            Format.ABS,
            (_I32,),
            ("literal",),
            "jump if signed < (N != V)",
        ),
        _spec(
            "JGT",
            Opcode.JGT,
            Format.ABS,
            (_I32,),
            ("literal",),
            "jump if signed > (!Z and N == V)",
        ),
        _spec(
            "JLE",
            Opcode.JLE,
            Format.ABS,
            (_I32,),
            ("literal",),
            "jump if signed <= (Z or N != V)",
        ),
        _spec(
            "CALL.ABS",
            Opcode.CALL_ABS,
            Format.ABS,
            (_I32,),
            ("literal",),
            "push return address, PC <- target",
            mnemonic="CALL",
        ),
        _spec(
            "CALL.IND",
            Opcode.CALL_IND,
            Format.R,
            (_A,),
            ("r1",),
            "push return address, PC <- aN (paper's CALL CallAddr)",
            mnemonic="CALL",
        ),
        _spec(
            "DJNZ",
            Opcode.DJNZ,
            Format.ABS,
            (_D, _I32),
            ("r1", "literal"),
            "rd <- rd - 1; jump if rd != 0",
            "ZN",
        ),
        # -- stack -------------------------------------------------------------
        _spec(
            "PUSH.D",
            Opcode.PUSH_D,
            Format.R,
            (_D,),
            ("r1",),
            "push rs (SP -= 4)",
            mnemonic="PUSH",
        ),
        _spec(
            "PUSH.A",
            Opcode.PUSH_A,
            Format.R,
            (_A,),
            ("r1",),
            "push as (SP -= 4)",
            mnemonic="PUSH",
        ),
        _spec(
            "POP.D",
            Opcode.POP_D,
            Format.R,
            (_D,),
            ("r1",),
            "pop into rd (SP += 4)",
            mnemonic="POP",
        ),
        _spec(
            "POP.A",
            Opcode.POP_A,
            Format.R,
            (_A,),
            ("r1",),
            "pop into ad (SP += 4)",
            mnemonic="POP",
        ),
        # -- system ------------------------------------------------------------
        _spec(
            "TRAP",
            Opcode.TRAP,
            Format.TRAP,
            (_TN,),
            ("imm8",),
            "software trap through vector table entry imm8",
        ),
        _spec(
            "RDPSW",
            Opcode.RDPSW,
            Format.R,
            (_D,),
            ("r1",),
            "rd <- PSW",
        ),
        _spec(
            "WRPSW",
            Opcode.WRPSW,
            Format.R,
            (_D,),
            ("r1",),
            "PSW <- rs",
            "CZNV",
        ),
    ]
}


#: Surface mnemonic -> overload list, in declaration order.
_MNEMONIC_INDEX: dict[str, list[InstructionSpec]] = {}
for _s in OPCODE_TABLE.values():
    _MNEMONIC_INDEX.setdefault(_s.mnemonic.upper(), []).append(_s)

#: Opcode value -> spec (RET/RETURN share an opcode; first wins).
_BY_OPCODE: dict[int, InstructionSpec] = {}
for _s in OPCODE_TABLE.values():
    _BY_OPCODE.setdefault(int(_s.opcode), _s)


def mnemonics() -> list[str]:
    """All surface mnemonics, sorted."""
    return sorted(_MNEMONIC_INDEX)


def specs_for_mnemonic(mnemonic: str) -> list[InstructionSpec]:
    """Overload list for a surface mnemonic (empty when unknown)."""
    return list(_MNEMONIC_INDEX.get(mnemonic.upper(), ()))


def lookup_opcode(opcode: int) -> InstructionSpec:
    """Spec for a binary opcode; raises ``KeyError`` for illegal opcodes."""
    return _BY_OPCODE[opcode]


def is_mnemonic(word: str) -> bool:
    return word.upper() in _MNEMONIC_INDEX
