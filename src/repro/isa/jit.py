"""Trace-level compilation: a template JIT for hot superblock chains.

Superblocks (PR 4/5) fuse straight-line code, but the block loop in
``CpuCore._run_superblocks`` still executes entry-by-entry: one
``entry.exec(cpu, entry)`` indirection, a handful of attribute loads and
a successor-memo validation per instruction.  This module promotes hot,
pc-validated *chains* of superblocks into one specialized Python
function per chain via source generation + :func:`compile`:

- register indices, immediates, branch targets and cycle costs are baked
  into the generated source as constants;
- per-instruction ``exec`` indirection and operand attribute loads are
  gone — each decoded instruction becomes two-to-eight plain statements
  over the hoisted ``data``/``addr``/``psw`` locals, with the PSW flag
  algebra inlined and constant-folded against known immediates;
- intermediate ``regs.pc`` writes are elided (bodies are pure-register;
  every exit point re-establishes the architectural pc exactly);
- exactly one deadline/limit/interrupt probe runs per block boundary, in
  the same order the superblock loop performs them, so stop points and
  interrupt delivery stay byte-identical;
- a chain whose last continuing edge returns to its own head compiles
  into a ``while True:`` loop — the whole hot loop body runs with zero
  dispatch until a probe or an off-chain branch exits.

Chains are built over the existing ``succ_taken``/``succ_fall`` memo
graph and stored on the :class:`~repro.isa.decodecache.Superblock`
itself (``jit_u``/``jit_ot``/``jit_ow`` variant slots), which means they
live in the digest-keyed :func:`~repro.isa.decodecache.decode_cache_for`
registry alongside the blocks: shared across sessions and batch lanes,
dropped wholesale with the cache on registry eviction, and — because the
generated code re-reads ``cpu._block_deadline`` at every boundary and
side exit — cut mid-chain by the same ``cut_block()`` path that flushes
the superblock resume memo.

Observation composes: the ``jit_ot``/``jit_ow`` variants replay each
block's ``trace_tmpl``/``fetch_events`` observation templates (PR 5) in
bulk from inside the compiled body, with wait-state charging baked into
the ``_w`` variant's costs.  Terminators the compiler does not model as
*continuing* edges (``RET``, ``RETI``, ``CALL_IND``, ``TRAP``, ``DIVU``,
``HALT``, ``EI``, ``WRPSW``) end a chain as a generic-exec tail: the
chain still inlines everything before them and finishes the odd
terminator through its bound executor, byte-identically.

The superblock engine itself (``use_jit=False``) is the reference
baseline, exactly as each prior engine PR kept its predecessor.
"""

from __future__ import annotations

from repro.isa.decodecache import (
    DecodeCache,
    DecodedInstruction,
    MEM_LD_B,
    MEM_LD_H,
    MEM_LD_W,
    MEM_LDABS_A,
    MEM_LDABS_D,
    MEM_POP_A,
    MEM_POP_D,
    MEM_PUSH_A,
    MEM_PUSH_D,
    MEM_ST_B,
    MEM_ST_H,
    MEM_ST_W,
    MEM_STABS_A,
    MEM_STABS_D,
    Superblock,
)
from repro.isa.instructions import Opcode
from repro.isa.registers import STACK_POINTER_INDEX, WORD_MASK
from repro.soc.bus import BusError
from repro.soc.memorymap import TRAP_BUS_ERROR

#: Block executions before a chain is compiled from that head.  Counted
#: per superblock in the JIT-enabled loops (``sb.heat``); one compile is
#: attempted exactly when the counter *equals* the threshold, so heads
#: the builder declines (spins, cold junk) are never retried.
JIT_THRESHOLD = 16

#: Chain length cap: bounds generated-source size and compile latency.
JIT_MAX_BLOCKS = 16

#: Per-cache cap on compiled chains — a backstop against pathological
#: images burning compile time; real workloads have a handful of hot
#: loops.
JIT_MAX_CHAINS = 128

_TAKEN_EXTRA = 1  # mirrors decodecache._JUMP_TAKEN_EXTRA

_JMP = int(Opcode.JMP)
_CALL_ABS = int(Opcode.CALL_ABS)
_DJNZ = int(Opcode.DJNZ)

#: Conditional branch opcode -> taken-condition over the ``psw`` local.
_COND_EXPR = {
    int(Opcode.JZ): "psw.zero",
    int(Opcode.JNZ): "not psw.zero",
    int(Opcode.JC): "psw.carry",
    int(Opcode.JNC): "not psw.carry",
    int(Opcode.JN): "psw.negative",
    int(Opcode.JNN): "not psw.negative",
    int(Opcode.JV): "psw.overflow",
    int(Opcode.JNV): "not psw.overflow",
    int(Opcode.JGE): "psw.negative == psw.overflow",
    int(Opcode.JLT): "psw.negative != psw.overflow",
    int(Opcode.JGT): "not psw.zero and psw.negative == psw.overflow",
    int(Opcode.JLE): "psw.zero or psw.negative != psw.overflow",
}

_M = WORD_MASK  # 4294967295
_S = 0x8000_0000


# ---------------------------------------------------------------------------
# Per-opcode statement emitters.  Each returns unindented source lines
# that reproduce the bound executor's architectural effects exactly —
# minus the ``regs.pc`` write, which the chain re-establishes at every
# exit point.  ``data``/``addr``/``psw`` are function locals.
# ---------------------------------------------------------------------------

def _logic_flags(var: str) -> list[str]:
    # Inlined PSW.set_logic_flags over an already-masked value.
    return [
        f"psw.zero = {var} == 0",
        f"psw.negative = {var} & {_S} != 0",
        "psw.carry = False",
        "psw.overflow = False",
    ]


def _sub_flags(lhs: str, rhs: str, res: str) -> list[str]:
    # Inlined PSW.set_sub_flags(lhs, rhs) with result precomputed.
    return [
        f"psw.zero = {res} == 0",
        f"psw.negative = {res} & {_S} != 0",
        f"psw.carry = {lhs} < {rhs}",
        f"_s = {lhs} & {_S} != 0",
        f"psw.overflow = _s != ({rhs} & {_S} != 0)"
        f" and ({res} & {_S} != 0) != _s",
    ]


def _sub_flags_const_rhs(lhs: str, rhs: int, res: str) -> list[str]:
    # set_sub_flags with the rhs (and therefore its sign) baked in.
    lines = [
        f"psw.zero = {res} == 0",
        f"psw.negative = {res} & {_S} != 0",
        f"psw.carry = {lhs} < {rhs}",
    ]
    if rhs & _S:
        lines.append(
            f"psw.overflow = {lhs} & {_S} == 0 and {res} & {_S} != 0"
        )
    else:
        lines.append(
            f"psw.overflow = {lhs} & {_S} != 0 and {res} & {_S} == 0"
        )
    return lines


def _add_flags_const_rhs(lhs: str, rhs_u: int, raw: str, res: str) -> list[str]:
    # set_add_flags with the rhs sign folded to a constant.
    lines = [
        f"psw.zero = {res} == 0",
        f"psw.negative = {res} & {_S} != 0",
        f"psw.carry = {raw} > {_M}",
    ]
    if rhs_u & _S:
        lines.append(
            f"psw.overflow = {lhs} & {_S} != 0 and {res} & {_S} == 0"
        )
    else:
        lines.append(
            f"psw.overflow = {lhs} & {_S} == 0 and {res} & {_S} != 0"
        )
    return lines


def _b_nop(e):
    return []


def _b_brk(e):
    return [f"cpu.brk_events.append({e.pc})"]


def _b_di(e):
    return ["psw.interrupt_enable = False"]


def _b_mov_dd(e):
    return [f"_v = data[{e.r2}]", f"data[{e.r1}] = _v", *_logic_flags("_v")]


def _b_mov_aa(e):
    return [f"addr[{e.r1}] = addr[{e.r2}]"]


def _b_mov_da(e):
    return [f"data[{e.r1}] = addr[{e.r2}]"]


def _b_mov_ad(e):
    return [f"addr[{e.r1}] = data[{e.r2}]"]


def _b_load_d(e):
    return [f"data[{e.r1}] = {e.imm_u}"]


def _b_load_a(e):
    return [f"addr[{e.r1}] = {e.imm_u}"]


def _b_add(e):
    return [
        f"_l = data[{e.r2}]",
        f"_b = data[{e.r3}]",
        "_r = _l + _b",
        f"_v = _r & {_M}",
        "psw.zero = _v == 0",
        f"psw.negative = _v & {_S} != 0",
        f"psw.carry = _r > {_M}",
        f"_s = _l & {_S} != 0",
        f"psw.overflow = _s == (_b & {_S} != 0) and (_v & {_S} != 0) != _s",
        f"data[{e.r1}] = _v",
    ]


def _b_sub(e):
    return [
        f"_l = data[{e.r2}]",
        f"_b = data[{e.r3}]",
        f"_v = (_l - _b) & {_M}",
        *_sub_flags("_l", "_b", "_v"),
        f"data[{e.r1}] = _v",
    ]


def _bitop(e, op: str) -> list[str]:
    return [
        f"_v = data[{e.r2}] {op} data[{e.r3}]",
        f"data[{e.r1}] = _v",
        *_logic_flags("_v"),
    ]


def _b_and(e):
    return _bitop(e, "&")


def _b_or(e):
    return _bitop(e, "|")


def _b_xor(e):
    return _bitop(e, "^")


def _b_shl(e):
    return [f"data[{e.r1}] = cpu._shift(_SHL, data[{e.r2}], data[{e.r3}] & 31)"]


def _b_shr(e):
    return [f"data[{e.r1}] = cpu._shift(_SHR, data[{e.r2}], data[{e.r3}] & 31)"]


def _b_sar(e):
    return [f"data[{e.r1}] = cpu._shift(_SAR, data[{e.r2}], data[{e.r3}] & 31)"]


def _shift_imm(e, kind: str) -> list[str]:
    amount = e.imm_u
    if amount == 0:
        # _shift(value, 0): logic flags over the unchanged value.
        return [
            f"_v = data[{e.r2}]",
            *_logic_flags("_v"),
            f"data[{e.r1}] = _v",
        ]
    lines = [f"_a = data[{e.r2}]"]
    if kind == "shl":
        lines += [
            f"_v = (_a << {amount}) & {_M}",
            f"_c = _a >> {32 - amount} & 1 != 0",
        ]
    elif kind == "shr":
        lines += [
            f"_v = _a >> {amount}",
            f"_c = _a >> {amount - 1} & 1 != 0",
        ]
    else:  # sar
        lines += [
            f"_v = ((_a - {1 << 32} if _a & {_S} else _a) >> {amount})"
            f" & {_M}",
            f"_c = _a >> {amount - 1} & 1 != 0",
        ]
    lines += [
        "psw.zero = _v == 0",
        f"psw.negative = _v & {_S} != 0",
        "psw.overflow = False",
        "psw.carry = _c",
        f"data[{e.r1}] = _v",
    ]
    return lines


def _b_shli(e):
    return _shift_imm(e, "shl")


def _b_shri(e):
    return _shift_imm(e, "shr")


def _b_sari(e):
    return _shift_imm(e, "sar")


def _b_mul(e):
    return [
        f"_v = (data[{e.r2}] * data[{e.r3}]) & {_M}",
        f"data[{e.r1}] = _v",
        *_logic_flags("_v"),
    ]


def _b_not(e):
    return [
        f"_v = ~data[{e.r2}] & {_M}",
        f"data[{e.r1}] = _v",
        *_logic_flags("_v"),
    ]


def _b_neg(e):
    # set_sub_flags(0, rhs) with lhs_sign == False folded out.
    return [
        f"_b = data[{e.r2}]",
        f"_v = -_b & {_M}",
        "psw.zero = _v == 0",
        f"psw.negative = _v & {_S} != 0",
        "psw.carry = 0 < _b",
        f"psw.overflow = _b & {_S} != 0 and _v & {_S} != 0",
        f"data[{e.r1}] = _v",
    ]


def _b_addi(e):
    return [
        f"_l = data[{e.r2}]",
        f"_r = _l + {e.imm_s}",
        f"_v = _r & {_M}",
        *_add_flags_const_rhs("_l", e.imm_u, "_r", "_v"),
        f"data[{e.r1}] = _v",
    ]


def _bitop_imm(e, op: str) -> list[str]:
    return [
        f"_v = data[{e.r2}] {op} {e.imm_u}",
        f"data[{e.r1}] = _v",
        *_logic_flags("_v"),
    ]


def _b_andi(e):
    return _bitop_imm(e, "&")


def _b_ori(e):
    return _bitop_imm(e, "|")


def _b_xori(e):
    return _bitop_imm(e, "^")


def _b_adda(e):
    return [f"addr[{e.r1}] = (addr[{e.r2}] + {e.imm_s}) & {_M}"]


def _b_cmp(e):
    return [
        f"_l = data[{e.r1}]",
        f"_b = data[{e.r2}]",
        f"_v = (_l - _b) & {_M}",
        *_sub_flags("_l", "_b", "_v"),
    ]


def _b_cmpi(e):
    return [
        f"_l = data[{e.r1}]",
        f"_v = (_l - {e.imm_u}) & {_M}",
        *_sub_flags_const_rhs("_l", e.imm_u, "_v"),
    ]


def _insert_mask(e) -> tuple[int, int]:
    mask = ((1 << e.width) - 1) if e.width < 32 else _M
    keep = _M & ~((mask << e.pos) & _M)
    return mask, keep


def _b_insert(e):
    mask, keep = _insert_mask(e)
    merged = ((e.imm_u & mask) << e.pos) & _M
    return [
        f"_v = data[{e.r2}] & {keep} | {merged}",
        f"data[{e.r1}] = _v",
        *_logic_flags("_v"),
    ]


def _b_insertr(e):
    mask, keep = _insert_mask(e)
    return [
        f"_v = data[{e.r2}] & {keep}"
        f" | (data[{e.r3}] & {mask}) << {e.pos} & {_M}",
        f"data[{e.r1}] = _v",
        *_logic_flags("_v"),
    ]


def _b_extru(e):
    return [
        f"_v = data[{e.r2}] >> {e.pos} & {e.imm_u}",
        f"data[{e.r1}] = _v",
        *_logic_flags("_v"),
    ]


def _b_extrs(e):
    lines = [f"_v = data[{e.r2}] >> {e.pos} & {e.imm_u}"]
    if e.imm_s:
        lines += [
            f"if _v & {e.imm_s}:",
            f"    _v |= {_M & ~e.imm_u}",
        ]
    lines += [f"data[{e.r1}] = _v", *_logic_flags("_v")]
    return lines


def _b_setb(e):
    return [
        f"_v = data[{e.r1}] | {1 << e.imm_u}",
        f"data[{e.r1}] = _v",
        *_logic_flags("_v"),
    ]


def _b_clrb(e):
    return [
        f"_v = data[{e.r1}] & {_M & ~(1 << e.imm_u)}",
        f"data[{e.r1}] = _v",
        *_logic_flags("_v"),
    ]


def _b_tglb(e):
    return [
        f"_v = data[{e.r1}] ^ {1 << e.imm_u}",
        f"data[{e.r1}] = _v",
        *_logic_flags("_v"),
    ]


def _b_tstb(e):
    return [f"psw.zero = not (data[{e.r1}] >> {e.imm_u} & 1)"]


def _b_rdpsw(e):
    return [f"data[{e.r1}] = psw.value"]


_BODY_EMITTERS = {
    int(Opcode.NOP): _b_nop,
    int(Opcode.BRK): _b_brk,
    int(Opcode.DI): _b_di,
    int(Opcode.MOV_DD): _b_mov_dd,
    int(Opcode.MOV_AA): _b_mov_aa,
    int(Opcode.MOV_DA): _b_mov_da,
    int(Opcode.MOV_AD): _b_mov_ad,
    int(Opcode.LOAD_D): _b_load_d,
    int(Opcode.LOAD_A): _b_load_a,
    int(Opcode.MOVI): _b_load_d,  # value precomputed, same move shape
    int(Opcode.MOVHI): _b_load_d,
    int(Opcode.ADD): _b_add,
    int(Opcode.SUB): _b_sub,
    int(Opcode.AND): _b_and,
    int(Opcode.OR): _b_or,
    int(Opcode.XOR): _b_xor,
    int(Opcode.SHL): _b_shl,
    int(Opcode.SHR): _b_shr,
    int(Opcode.SAR): _b_sar,
    int(Opcode.SHLI): _b_shli,
    int(Opcode.SHRI): _b_shri,
    int(Opcode.SARI): _b_sari,
    int(Opcode.MUL): _b_mul,
    int(Opcode.NOT): _b_not,
    int(Opcode.NEG): _b_neg,
    int(Opcode.ADDI): _b_addi,
    int(Opcode.ANDI): _b_andi,
    int(Opcode.ORI): _b_ori,
    int(Opcode.XORI): _b_xori,
    int(Opcode.ADDA): _b_adda,
    int(Opcode.CMP): _b_cmp,
    int(Opcode.CMPI): _b_cmpi,
    int(Opcode.INSERT): _b_insert,
    int(Opcode.INSERTR): _b_insertr,
    int(Opcode.EXTRU): _b_extru,
    int(Opcode.EXTRS): _b_extrs,
    int(Opcode.SETB): _b_setb,
    int(Opcode.CLRB): _b_clrb,
    int(Opcode.TGLB): _b_tglb,
    int(Opcode.TSTB): _b_tstb,
    int(Opcode.RDPSW): _b_rdpsw,
}


def _body_lines(e: DecodedInstruction, env: dict, tag: str) -> list[str]:
    emitter = _BODY_EMITTERS.get(e.opcode)
    if emitter is not None:
        return emitter(e)
    # An opcode without a template (can only happen if a new pure
    # body opcode lands without one): fall back to its bound executor.
    # The redundant ``regs.pc`` store it performs is overwritten by the
    # chain's next exit point, so semantics are unchanged.
    name = f"_x{tag}"
    env[name] = e
    return [f"{name}.exec(cpu, {name})"]


# Memory micro-op statements (terminator position only; bodies are
# pure-register by construction).  Mirrors the ``_x_*`` executors minus
# the pc store.
_SPI = STACK_POINTER_INDEX


def _mem_lines(e: DecodedInstruction) -> list[str]:
    kind = e.mem_kind
    if kind == MEM_LD_W:
        return [
            f"data[{e.r1}] = cpu._read_word_fast("
            f"(addr[{e.r2}] + {e.mem_disp}) & {_M})"
        ]
    if kind == MEM_ST_W:
        return [
            f"cpu._write_word_fast("
            f"(addr[{e.r2}] + {e.mem_disp}) & {_M}, data[{e.r1}])"
        ]
    if kind == MEM_LD_H:
        return [
            f"data[{e.r1}] = cpu._read_half_fast("
            f"(addr[{e.r2}] + {e.mem_disp}) & {_M})"
        ]
    if kind == MEM_LD_B:
        return [
            f"data[{e.r1}] = cpu._read_byte_fast("
            f"(addr[{e.r2}] + {e.mem_disp}) & {_M})"
        ]
    if kind == MEM_ST_H:
        return [
            f"cpu._write_half_fast("
            f"(addr[{e.r2}] + {e.mem_disp}) & {_M}, data[{e.r1}])"
        ]
    if kind == MEM_ST_B:
        return [
            f"cpu._write_byte_fast("
            f"(addr[{e.r2}] + {e.mem_disp}) & {_M}, data[{e.r1}])"
        ]
    if kind == MEM_PUSH_D:
        return [
            f"_p = (addr[{_SPI}] - 4) & {_M}",
            f"addr[{_SPI}] = _p",
            f"cpu._write_word_fast(_p, data[{e.r1}])",
        ]
    if kind == MEM_PUSH_A:
        return [
            f"_v = addr[{e.r1}]",
            f"_p = (addr[{_SPI}] - 4) & {_M}",
            f"addr[{_SPI}] = _p",
            "cpu._write_word_fast(_p, _v)",
        ]
    if kind == MEM_POP_D:
        return [
            f"data[{e.r1}] = cpu._read_word_fast(addr[{_SPI}])",
            f"addr[{_SPI}] = (addr[{_SPI}] + 4) & {_M}",
        ]
    if kind == MEM_POP_A:
        return [
            f"_v = cpu._read_word_fast(addr[{_SPI}])",
            f"addr[{_SPI}] = (addr[{_SPI}] + 4) & {_M}",
            f"addr[{e.r1}] = _v",
        ]
    if kind == MEM_LDABS_D:
        return [f"data[{e.r1}] = cpu._read_word_fast({e.mem_disp})"]
    if kind == MEM_LDABS_A:
        return [f"addr[{e.r1}] = cpu._read_word_fast({e.mem_disp})"]
    if kind == MEM_STABS_D:
        return [f"cpu._write_word_fast({e.mem_disp}, data[{e.r1}])"]
    # MEM_STABS_A
    return [f"cpu._write_word_fast({e.mem_disp}, addr[{e.r1}])"]


# ---------------------------------------------------------------------------
# Chain tracing over the superblock graph.
# ---------------------------------------------------------------------------

def trace_chain(
    cache: DecodeCache, head: Superblock
) -> tuple[list[Superblock], list[str | None]] | None:
    """The block sequence and continuation edges for a chain at *head*.

    Returns ``(blocks, links)`` where ``links[i]`` is ``"taken"`` or
    ``"fall"`` when control continues from ``blocks[i]`` to
    ``blocks[i + 1]`` (or, for the final block of a cyclic chain, back
    to the head), and ``None`` when ``blocks[i]`` ends the chain.
    ``None`` is returned when *head* is not worth chaining (an idle
    spin, which the analytic warp already handles).

    At a conditional terminator the builder commits to one edge — warm
    successor memos first, then the loop-shaped edge (``DJNZ`` taken /
    backward target) — since a wrong pick only costs a side exit, never
    correctness: the generated code exits the chain on the other edge
    with the architectural pc re-established.
    """
    if head.spin_reg >= 0:
        return None
    blocks = [head]
    links: list[str | None] = []
    seen = {head.start}
    cur = head
    while True:
        term = cur.terminator
        edge: str | None = None
        if term is None:
            pass  # body-only tail: next address is not cacheable
        elif term.mem_kind:
            edge = "fall"
        elif term.opcode == _JMP or term.opcode == _CALL_ABS:
            edge = "taken"
        elif term.opcode == _DJNZ or term.opcode in _COND_EXPR:
            edge = _pick_edge(cur, term)
        # else: generic tail (RET/RETI/CALL_IND/TRAP/DIVU/HALT/EI/WRPSW)
        if edge is None:
            links.append(None)
            return blocks, links
        next_pc = term.imm_u if edge == "taken" else term.next_pc
        if next_pc == head.start:
            links.append(edge)  # cyclic: close the loop on the head
            return blocks, links
        if len(blocks) >= JIT_MAX_BLOCKS or next_pc in seen:
            links.append(None)
            return blocks, links
        succ = cache.block_at(next_pc)
        if succ is None or succ.spin_reg >= 0:
            links.append(None)
            return blocks, links
        links.append(edge)
        blocks.append(succ)
        seen.add(next_pc)
        cur = succ


def _pick_edge(cur: Superblock, term: DecodedInstruction) -> str:
    taken_pc = term.imm_u
    st, sf = cur.succ_taken, cur.succ_fall
    taken_warm = st is not None and st.start == taken_pc
    fall_warm = sf is not None and sf.start == term.next_pc
    if taken_warm != fall_warm:
        return "taken" if taken_warm else "fall"
    if term.opcode == _DJNZ:
        return "taken"  # loop continuation
    return "taken" if taken_pc <= cur.start else "fall"


# ---------------------------------------------------------------------------
# Source generation.
# ---------------------------------------------------------------------------

class _Emitter:
    def __init__(self):
        self.lines: list[str] = []
        self.indent = 1

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def block(self, lines: list[str]) -> None:
        for line in lines:
            self.w(line)


def generate_chain_source(
    blocks: list[Superblock],
    links: list[str | None],
    observed: bool,
    charge: bool,
) -> tuple[str, dict]:
    """Source + injected globals for one chain variant.

    The generated ``_chain(cpu, limit)`` returns the number of blocks it
    completed (0 only when the entry block's budget precheck refused to
    start, with no state touched — the caller then takes the
    interpreter's narrow path).  Counter commits are block-granular and
    ordered exactly as the superblock loops order them, so faults,
    SFR-settlement reads and trap exits observe identical state.
    """
    env: dict = {
        "BusError": BusError,
        "_SHL": Opcode.SHL,
        "_SHR": Opcode.SHR,
        "_SAR": Opcode.SAR,
    }
    cyclic = links[-1] is not None
    src = _Emitter()
    src.lines.append("def _chain(cpu, limit):")
    src.w("regs = cpu.regs")
    src.w("data = regs.data")
    src.w("addr = regs.address")
    src.w("psw = regs.psw")
    src.w("intc = cpu.intc")
    if observed:
        src.w("_bus = cpu.bus")
        src.w("_bt = _bus.trace_buffer")
        src.w("_tr = cpu.trace")
    src.w("_n = 0")
    if cyclic:
        src.w("while True:")
        src.indent += 1
    last = len(blocks) - 1
    for i, sb in enumerate(blocks):
        _emit_block(src, env, i, sb, links[i], blocks, observed, charge)
        if i < last or cyclic:
            next_start = blocks[i + 1].start if i < last else blocks[0].start
            _emit_probes(src, next_start)
    return "\n".join(src.lines) + "\n", env


def _emit_probes(src: _Emitter, next_start: int) -> None:
    # One deadline/limit/interrupt probe per block boundary, in the
    # exact order the superblock loop performs them (loop bottom, then
    # loop top).  ``_block_deadline`` is re-read every time: a mem
    # terminator's SFR side effects may have cut the block mid-chain.
    src.w("_d = cpu._block_deadline")
    src.w("if _d is not None and cpu.cycles >= _d:")
    src.w(f"    regs.pc = {next_start}")
    src.w("    return _n")
    src.w("if limit is not None and cpu.instructions_retired >= limit:")
    src.w(f"    regs.pc = {next_start}")
    src.w("    return _n")
    src.w(
        "if intc is not None and psw.interrupt_enable"
        " and intc.pending_line() is not None:"
    )
    src.w(f"    regs.pc = {next_start}")
    src.w("    return _n")


def _emit_block(
    src: _Emitter,
    env: dict,
    i: int,
    sb: Superblock,
    link: str | None,
    blocks: list[Superblock],
    observed: bool,
    charge: bool,
) -> None:
    term = sb.terminator
    if sb.body_count:
        body_cycles = sb.body_cycles_w if charge else sb.body_cycles
        # All-or-nothing budget precheck, mirroring the fused body loop:
        # a window narrower than the body exits to the interpreter's
        # single-step narrow path with nothing executed.
        src.w(
            f"if limit is not None and"
            f" cpu.instructions_retired + {sb.body_count} > limit:"
        )
        src.w(f"    regs.pc = {sb.start}")
        src.w("    return _n")
        src.w("_d = cpu._block_deadline")
        src.w(f"if _d is not None and cpu.cycles + {body_cycles} >= _d:")
        src.w(f"    regs.pc = {sb.start}")
        src.w("    return _n")
        for k, entry in enumerate(sb.body):
            src.block(_body_lines(entry, env, f"{i}_{k}"))
        src.w(f"cpu.instructions_retired += {sb.body_count}")
        src.w(f"cpu.cycles += {body_cycles}")
        if observed:
            src.w("cpu.sb_replays += 1")
            if sb.fetch_events:
                env[f"_fe{i}"] = sb.fetch_events
                src.w("if _bt is not None:")
                src.w(f"    _bus.access_count += {len(sb.fetch_events)}")
                src.w(f"    _bt.extend_raw(_fe{i})")
            tmpl = sb.trace_tmpl_w if charge else sb.trace_tmpl
            if tmpl:
                env[f"_tt{i}"] = tmpl
                src.w("if _tr is not None:")
                src.w(f"    _tr.extend_raw(_tt{i})")
        # Post-body retire ceiling: the superblock loops break here with
        # the pc already on the next instruction (the terminator, or the
        # uncacheable next address when there is none).
        after_pc = term.pc if term is not None else sb.body[-1].next_pc
        src.w("if limit is not None and cpu.instructions_retired >= limit:")
        src.w(f"    regs.pc = {after_pc}")
        src.w("    return _n")
    if term is None:
        # Next address not cacheable: hand back to the outer loop.
        src.w(f"regs.pc = {sb.body[-1].next_pc}")
        src.w("return _n + 1")
        return
    _emit_terminator(src, env, i, sb, term, link, observed, charge)


def _record(src: _Emitter, term, cost, indent: str = "") -> None:
    src.w(
        f"{indent}if _tr is not None:"
    )
    src.w(
        f"{indent}    _tr.record({term.pc}, {term.opcode},"
        f" {term.mnemonic!r}, {cost})"
    )


def _emit_terminator(
    src: _Emitter,
    env: dict,
    i: int,
    sb: Superblock,
    term: DecodedInstruction,
    link: str | None,
    observed: bool,
    charge: bool,
) -> None:
    # Fetch replay precedes execution, exactly as step() emits it.
    if observed and term.fetch_events:
        env[f"_ft{i}"] = term.fetch_events
        src.w("if _bt is not None:")
        src.w(f"    _bus.access_count += {len(term.fetch_events)}")
        src.w(f"    _bt.extend_raw(_ft{i})")
    waits = term.fetch_waits if charge else 0
    cost_fall = term.base_cycles + waits
    cost_taken = cost_fall + _TAKEN_EXTRA

    def exit_edge(pc_expr: int, cost: int, indent: str) -> None:
        src.w(f"{indent}cpu.cycles += {cost}")
        if observed:
            _record(src, term, cost, indent)
        src.w(f"{indent}regs.pc = {pc_expr}")
        src.w(f"{indent}return _n + 1")

    def continue_edge(cost: int) -> None:
        src.w(f"cpu.cycles += {cost}")
        if observed:
            _record(src, term, cost)
        src.w("_n += 1")

    def bus_guard(op_lines: list[str]) -> None:
        # The step()-identical BusError protocol: architectural trap,
        # two cycles, one retire, no trace record.
        src.w("try:")
        for line in op_lines:
            src.w(f"    {line}")
        src.w("except BusError:")
        src.w(f"    cpu.take_trap({TRAP_BUS_ERROR}, {term.next_pc})")
        src.w("    cpu.cycles += 2")
        src.w("    cpu.instructions_retired += 1")
        src.w("    return _n + 1")

    opcode = term.opcode
    if term.mem_kind:
        if charge:
            # step() zeroes pending waits per instruction then adds the
            # fetch waits; inside a chain that collapses to assignment.
            src.w(f"cpu._pending_waits = {term.fetch_waits}")
        bus_guard(_mem_lines(term))
        src.w("cpu.instructions_retired += 1")
        if charge:
            src.w(f"_c = {term.base_cycles} + cpu._pending_waits")
            src.w("cpu.cycles += _c")
            if observed:
                _record(src, term, "_c")
        else:
            src.w(f"cpu.cycles += {term.base_cycles}")
            if observed:
                _record(src, term, term.base_cycles)
        if link is None:
            src.w(f"regs.pc = {term.next_pc}")
            src.w("return _n + 1")
        else:
            src.w("_n += 1")
        return

    if opcode == _JMP:
        src.w("cpu.instructions_retired += 1")
        if link is None:
            exit_edge(term.imm_u, cost_taken, "")
        else:
            continue_edge(cost_taken)
        return

    if opcode == _CALL_ABS:
        if charge:
            src.w(f"cpu._pending_waits = {term.fetch_waits}")
        bus_guard([f"cpu._push({term.next_pc})"])
        src.w("cpu.instructions_retired += 1")
        if charge:
            src.w(
                f"_c = {term.base_cycles + _TAKEN_EXTRA}"
                f" + cpu._pending_waits"
            )
            src.w("cpu.cycles += _c")
            if observed:
                _record(src, term, "_c")
        else:
            src.w(f"cpu.cycles += {term.base_cycles + _TAKEN_EXTRA}")
            if observed:
                _record(src, term, term.base_cycles + _TAKEN_EXTRA)
        if link is None:
            src.w(f"regs.pc = {term.imm_u}")
            src.w("return _n + 1")
        else:
            src.w("_n += 1")
        return

    if opcode == _DJNZ:
        src.w(f"_v = (data[{term.r1}] - 1) & {_M}")
        src.w(f"data[{term.r1}] = _v")
        src.block(_logic_flags("_v"))
        src.w("cpu.instructions_retired += 1")
        taken_cond = "_v"
        _emit_conditional_edges(
            src, term, taken_cond, link, cost_taken, cost_fall,
            exit_edge, continue_edge,
        )
        return

    cond = _COND_EXPR.get(opcode)
    if cond is not None:
        src.w("cpu.instructions_retired += 1")
        _emit_conditional_edges(
            src, term, cond, link, cost_taken, cost_fall,
            exit_edge, continue_edge,
        )
        return

    # Generic tail: RET/RETI/CALL_IND/TRAP/DIVU/HALT/EI/WRPSW — run the
    # bound executor once and exit the chain (always the last block).
    name = f"_tk{i}"
    env[name] = term
    if charge:
        src.w(f"cpu._pending_waits = {term.fetch_waits}")
    bus_guard([f"_t = {name}.exec(cpu, {name})"])
    src.w("cpu.instructions_retired += 1")
    if charge:
        src.w(f"_c = {term.base_cycles} + cpu._pending_waits")
        src.w("if _t:")
        src.w(f"    _c += {_TAKEN_EXTRA}")
    else:
        src.w(
            f"_c = {term.base_cycles + _TAKEN_EXTRA} if _t"
            f" else {term.base_cycles}"
        )
    src.w("cpu.cycles += _c")
    if observed:
        _record(src, term, "_c")
    src.w("return _n + 1")


def _emit_conditional_edges(
    src: _Emitter,
    term: DecodedInstruction,
    taken_cond: str,
    link: str | None,
    cost_taken: int,
    cost_fall: int,
    exit_edge,
    continue_edge,
) -> None:
    if link == "taken":
        # Off-chain edge is fall-through: exit when the branch is NOT
        # taken, fall into the next block otherwise.
        src.w(f"if not ({taken_cond}):")
        exit_edge(term.next_pc, cost_fall, "    ")
        continue_edge(cost_taken)
    elif link == "fall":
        src.w(f"if {taken_cond}:")
        exit_edge(term.imm_u, cost_taken, "    ")
        continue_edge(cost_fall)
    else:
        # Chain ends here: both edges exit.
        src.w(f"if {taken_cond}:")
        exit_edge(term.imm_u, cost_taken, "    ")
        exit_edge(term.next_pc, cost_fall, "")


# ---------------------------------------------------------------------------
# Compilation + installation.
# ---------------------------------------------------------------------------

def _compile_variant(
    blocks: list[Superblock],
    links: list[str | None],
    observed: bool,
    charge: bool,
):
    source, env = generate_chain_source(blocks, links, observed, charge)
    tag = "o" if observed else "u"
    if charge:
        tag += "w"
    code = compile(
        source, f"<jit-chain {blocks[0].start:#x} {tag}>", "exec"
    )
    exec(code, env)
    return env["_chain"]


def _worth_compiling(
    blocks: list[Superblock], links: list[str | None]
) -> bool:
    if links[-1] is not None:
        return True  # cyclic: the whole hot loop runs dispatch-free
    if len(blocks) >= 2:
        return True
    return blocks[0].body_count >= 4


def compile_chain(cache: DecodeCache, head: Superblock) -> bool:
    """Build and install every variant of the chain headed at *head*.

    Returns ``True`` when a chain was installed.  Declines idle spins
    (the analytic warp owns them), single blocks too small to beat the
    function-call overhead, and caches at :data:`JIT_MAX_CHAINS`.
    Concurrent duplicate compilation (shared caches across pool
    workers) is benign, like concurrent block formation: both threads
    install identical functions.
    """
    if cache.jit_chains >= JIT_MAX_CHAINS:
        return False
    traced = trace_chain(cache, head)
    if traced is None:
        return False
    blocks, links = traced
    if not _worth_compiling(blocks, links):
        return False
    try:
        jit_u = _compile_variant(blocks, links, False, False)
        jit_ot = _compile_variant(blocks, links, True, False)
        jit_ow = _compile_variant(blocks, links, True, True)
    except Exception:
        # A codegen hole must degrade to the superblock engine, never
        # kill the run; tests assert jit_exec_steps > 0, so silent
        # regressions here still surface.
        return False
    _memoise_edges(cache, blocks)
    head.jit_u = jit_u
    head.jit_ot = jit_ot
    head.jit_ow = jit_ow
    cache.jit_chains += 1
    return True


def _memoise_edges(cache: DecodeCache, blocks: list[Superblock]) -> None:
    """Pre-warm the successor memos for every static edge of the chain.

    Side exits retire inside the compiled body, so the superblock loop
    never observes those transitions; memoising both edges here keeps
    the chain graph as warm as interpreted execution would have left it
    (``block_at`` returns ``None`` for uncacheable targets, matching
    the runtime memo rule)."""
    for sb in blocks:
        term = sb.terminator
        if term is None:
            continue
        if term.mem_kind:
            if sb.succ_fall is None:
                sb.succ_fall = cache.block_at(term.next_pc)
        elif term.opcode == _JMP or term.opcode == _CALL_ABS:
            if sb.succ_taken is None:
                sb.succ_taken = cache.block_at(term.imm_u)
        elif term.opcode == _DJNZ or term.opcode in _COND_EXPR:
            if sb.succ_taken is None:
                sb.succ_taken = cache.block_at(term.imm_u)
            if sb.succ_fall is None:
                sb.succ_fall = cache.block_at(term.next_pc)
