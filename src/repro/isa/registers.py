"""Register model for the SC88 core.

The core has two sixteen-entry register banks: data registers ``d0``-``d15``
and address registers ``a0``-``a15``.  The paper's code examples rely on
being able to alias a register with a symbolic name (``.DEFINE CallAddr
A12``), so register parsing accepts any case and both banks.

``a15`` is the architectural stack pointer; platforms initialise it to the
top of RAM at reset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

WORD_MASK = 0xFFFF_FFFF
NUM_REGS_PER_CLASS = 16
STACK_POINTER_INDEX = 15


class RegisterClass(enum.Enum):
    """The two SC88 register banks."""

    DATA = "d"
    ADDRESS = "a"


@dataclass(frozen=True)
class Register:
    """A single architectural register (bank + index)."""

    cls: RegisterClass
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_REGS_PER_CLASS:
            raise ValueError(f"register index out of range: {self.index}")

    @property
    def name(self) -> str:
        return f"{self.cls.value}{self.index}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def DataRegister(index: int) -> Register:
    """Convenience constructor for ``d<index>``."""
    return Register(RegisterClass.DATA, index)


def AddressRegister(index: int) -> Register:
    """Convenience constructor for ``a<index>``."""
    return Register(RegisterClass.ADDRESS, index)


STACK_POINTER = AddressRegister(STACK_POINTER_INDEX)


def parse_register(text: str) -> Register | None:
    """Parse a register name such as ``d14`` or ``A12``.

    Returns ``None`` when *text* is not a register name, which lets callers
    fall back to symbol lookup (the assembler needs this for ``.DEFINE``
    register aliases).
    """
    if len(text) < 2:
        return None
    prefix = text[0].lower()
    if prefix not in ("d", "a"):
        return None
    digits = text[1:]
    if not digits.isdigit():
        return None
    index = int(digits)
    if index >= NUM_REGS_PER_CLASS:
        return None
    cls = RegisterClass.DATA if prefix == "d" else RegisterClass.ADDRESS
    return Register(cls, index)


@dataclass
class ProcessorStatusWord:
    """PSW with the four ALU flags and the interrupt-enable bit.

    The word layout is ``[C=bit0, Z=bit1, N=bit2, V=bit3, IE=bit7]``; the
    remaining bits read back as zero.  Tests store and restore the PSW via
    ``RETI``, so round-tripping through :attr:`value` must be lossless.
    """

    carry: bool = False
    zero: bool = False
    negative: bool = False
    overflow: bool = False
    interrupt_enable: bool = False

    _C_BIT = 1 << 0
    _Z_BIT = 1 << 1
    _N_BIT = 1 << 2
    _V_BIT = 1 << 3
    _IE_BIT = 1 << 7

    @property
    def value(self) -> int:
        word = 0
        if self.carry:
            word |= self._C_BIT
        if self.zero:
            word |= self._Z_BIT
        if self.negative:
            word |= self._N_BIT
        if self.overflow:
            word |= self._V_BIT
        if self.interrupt_enable:
            word |= self._IE_BIT
        return word

    @value.setter
    def value(self, word: int) -> None:
        self.carry = bool(word & self._C_BIT)
        self.zero = bool(word & self._Z_BIT)
        self.negative = bool(word & self._N_BIT)
        self.overflow = bool(word & self._V_BIT)
        self.interrupt_enable = bool(word & self._IE_BIT)

    def set_logic_flags(self, result: int) -> None:
        """Flag update used by logical and move operations."""
        result &= WORD_MASK
        self.zero = result == 0
        self.negative = bool(result & 0x8000_0000)
        self.carry = False
        self.overflow = False

    def set_add_flags(self, lhs: int, rhs: int, result: int) -> None:
        """Flag update for addition, *result* not yet masked."""
        masked = result & WORD_MASK
        self.zero = masked == 0
        self.negative = bool(masked & 0x8000_0000)
        self.carry = result > WORD_MASK
        lhs_sign = bool(lhs & 0x8000_0000)
        rhs_sign = bool(rhs & 0x8000_0000)
        out_sign = bool(masked & 0x8000_0000)
        self.overflow = lhs_sign == rhs_sign and out_sign != lhs_sign

    def set_sub_flags(self, lhs: int, rhs: int) -> None:
        """Flag update for subtraction/compare (``lhs - rhs``)."""
        result = (lhs - rhs) & WORD_MASK
        self.zero = result == 0
        self.negative = bool(result & 0x8000_0000)
        self.carry = lhs < rhs  # borrow
        lhs_sign = bool(lhs & 0x8000_0000)
        rhs_sign = bool(rhs & 0x8000_0000)
        out_sign = bool(result & 0x8000_0000)
        self.overflow = lhs_sign != rhs_sign and out_sign != lhs_sign

    def copy(self) -> "ProcessorStatusWord":
        clone = ProcessorStatusWord()
        clone.value = self.value
        return clone


@dataclass
class RegisterFile:
    """The full architectural register state of one SC88 core."""

    data: list[int] = field(default_factory=lambda: [0] * NUM_REGS_PER_CLASS)
    address: list[int] = field(default_factory=lambda: [0] * NUM_REGS_PER_CLASS)
    pc: int = 0
    psw: ProcessorStatusWord = field(default_factory=ProcessorStatusWord)

    def read(self, reg: Register) -> int:
        bank = self.data if reg.cls is RegisterClass.DATA else self.address
        return bank[reg.index]

    def write(self, reg: Register, value: int) -> None:
        bank = self.data if reg.cls is RegisterClass.DATA else self.address
        bank[reg.index] = value & WORD_MASK

    @property
    def sp(self) -> int:
        return self.address[STACK_POINTER_INDEX]

    @sp.setter
    def sp(self, value: int) -> None:
        self.address[STACK_POINTER_INDEX] = value & WORD_MASK

    def snapshot(self) -> dict[str, int]:
        """Flat name→value view used by trace capture and debug ports."""
        view: dict[str, int] = {}
        for i, value in enumerate(self.data):
            view[f"d{i}"] = value
        for i, value in enumerate(self.address):
            view[f"a{i}"] = value
        view["pc"] = self.pc
        view["psw"] = self.psw.value
        return view

    def reset(self, sp_init: int = 0) -> None:
        for i in range(NUM_REGS_PER_CLASS):
            self.data[i] = 0
            self.address[i] = 0
        self.pc = 0
        self.psw.value = 0
        if sp_init:
            self.sp = sp_init
