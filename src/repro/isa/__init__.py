"""SC88 instruction-set architecture.

The SC88 is a small 32-bit chip-card microcontroller core modelled on the
class of device the ADVM paper targets (the Infineon SLE88 family).  It
provides:

- sixteen 32-bit data registers ``d0``-``d15``,
- sixteen 32-bit address registers ``a0``-``a15`` (``a15`` is the stack
  pointer by convention),
- a program counter and a processor status word with C/Z/N/V flags and an
  interrupt-enable bit,
- a compact instruction set including the bit-field ``INSERT``/``EXTR``
  operations the paper's Figure 6 uses and the ``LOAD``/``STORE``/``CALL``/
  ``RETURN`` forms of Figure 7.

Submodules
----------
``registers``
    Register file model, register name parsing, and the PSW.
``encoding``
    Instruction word formats and field packing/unpacking.
``instructions``
    The opcode table: one :class:`~repro.isa.instructions.InstructionSpec`
    per machine operation, plus mnemonic lookup helpers.
"""

from repro.isa.registers import (
    AddressRegister,
    DataRegister,
    ProcessorStatusWord,
    Register,
    RegisterClass,
    RegisterFile,
    parse_register,
)
from repro.isa.encoding import (
    Format,
    decode_word,
    encode_word,
    field_mask,
)
from repro.isa.instructions import (
    InstructionSpec,
    Opcode,
    OPCODE_TABLE,
    lookup_opcode,
    mnemonics,
)

__all__ = [
    "AddressRegister",
    "DataRegister",
    "Format",
    "InstructionSpec",
    "Opcode",
    "OPCODE_TABLE",
    "ProcessorStatusWord",
    "Register",
    "RegisterClass",
    "RegisterFile",
    "decode_word",
    "encode_word",
    "field_mask",
    "lookup_opcode",
    "mnemonics",
    "parse_register",
]
