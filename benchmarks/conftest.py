"""Shared helpers for the experiment benchmarks.

Every benchmark module regenerates one row of DESIGN.md's per-experiment
index (paper figures F1-F7 and claims C1-C7).  Benchmarks both *measure*
(pytest-benchmark timings of the representative operation) and *assert
the paper's shape* (who wins, by what kind of factor) so a regression in
the reproduced result fails the bench run, not just the prose.
"""

from __future__ import annotations

import pytest


def shape(msg: str) -> None:
    """Print a reproduced-shape line into the bench log."""
    print(f"[shape] {msg}")


@pytest.fixture(scope="session")
def default_system():
    from repro.core.system_env import make_default_system

    return make_default_system(nvm_tests=2, uart_tests=1)
