"""Artifact-store and fleet work-list benchmarks (ISSUE 10).

The persistent artifact store exists to make a *process* restart warm:
predecode, superblock formation and JIT chain shape are pure functions
of (image digest, region bounds, wait states), so a fresh process that
finds them on disk should skip the derivation entirely.  The fleet
work-list exists to shard one matrix across worker processes without a
coordinator.  This bench records the acceptance numbers ISSUE 10 ties
the subsystem to:

- **warm start**: a cold-registry matrix run that restores its decode
  caches from the store vs one that re-derives everything from the
  image bytes — verdicts byte-identical, the warm run reports zero
  decode misses, and the restore path at least 1.5x faster (the
  committed ``bench_trend`` floor);
- **zero-fault overhead**: the same warm matrix driven through a
  store+work-list scheduler (every cell claimed, executed, published)
  vs a plain serial scheduler — byte-identical and at most 5% slower
  (``speedup >= 0.95``);
- **chaos completion**: a real fleet — one worker process SIGKILLed
  mid-shard holding a lease, survivors stealing it after expiry — plus
  one published result corrupted after the fact: the matrix settles
  exactly once (first-writer-wins accounting), the corruption is
  detected, quarantined and re-derived, and every verdict is
  byte-identical to a scalar serial oracle.

Emits ``BENCH_artifact_store.json`` next to the repository root.  Also
runnable as a script: ``python benchmarks/bench_artifact_store.py
[--quick]`` — the CI perf-smoke job uses ``--quick`` and fails the
build if either speed gate or any identity assertion trips.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.core.faults import ACTION_KILL, FaultPlan, FaultSpec, SITE_SESSION_RUN
from repro.core.scheduler import RegressionScheduler, result_to_payload
from repro.core.system_env import make_default_system
from repro.core.targets import target as lookup_target
from repro.core.workloads import make_nvm_environment, make_uart_environment
from repro.core.workspace import (
    load_module_environment,
    write_system_environment,
)
from repro.isa.decodecache import reset_registry, set_artifact_store
from repro.isa.jit import JIT_THRESHOLD
from repro.soc.derivatives import SC88A, derivative as lookup_derivative
from repro.store import ArtifactStore, WorkList

from conftest import shape
from _harness import engine_matrix, BenchResults, strip_result as strip

RESULTS = BenchResults("artifact_store")
RESULTS["engine_matrix"] = engine_matrix(
    candidate={"artifact_store": True, "fleet_worklist": True},
    reference={"artifact_store": False, "note": "cold re-derivation"},
)

#: The two-target fleet matrix the chaos section shards.
TARGETS = ["golden", "rtl"]

#: Full (pytest/CI bench) and quick (perf-smoke gate) configurations.
#: Quick embeds its own thinner warm-start floor (one small image makes
#: the restore-vs-derive gap noisier); the committed trend floor gates
#: the full-mode JSON.
FULL = {
    "nvm_tests": 2,
    "uart_tests": 1,
    "repeats": 5,
    "fleet_survivors": 2,
    "min_warm_speedup": 1.5,
    "min_zero_fault_speedup": 0.95,  # always-on store may cost at most 5%
    "mode": "full",
}
QUICK = {
    "nvm_tests": 1,
    "uart_tests": 0,
    "repeats": 3,
    "fleet_survivors": 1,
    "min_warm_speedup": 1.2,
    "min_zero_fault_speedup": 0.90,  # tiny matrix: per-sample noise > 5%
    "mode": "quick",
}


def make_environments(config):
    environments = {"NVM": make_nvm_environment(config["nvm_tests"])}
    if config["uart_tests"]:
        environments["UART"] = make_uart_environment(config["uart_tests"])
    return environments


def interleaved_best(repeats: int, *fns):
    """Best-of-N wall clock for several configurations sampled
    round-robin, so machine drift (frequency scaling, page cache,
    background load) lands on every side of a comparison instead of
    biasing whichever ran last.  Returns ``(bests, values)`` aligned
    with *fns*."""
    bests = [None] * len(fns)
    values = [None] * len(fns)
    for _ in range(repeats):
        for index, fn in enumerate(fns):
            start = time.perf_counter()
            value = fn()
            elapsed = time.perf_counter() - start
            if bests[index] is None or elapsed < bests[index]:
                bests[index] = elapsed
                values[index] = value
    return bests, values


def run_warm_start(config) -> dict:
    """Cold-registry matrix restored from the store vs re-derived from
    the image bytes — identity and zero decode misses first, then the
    speedup gate.

    Measured over one image's first pass in both modes: cold-start
    cost is per image (predecode + formation + chain compilation), so
    folding more cells into the sample only dilutes the thing being
    measured under execution time that is identical on both sides."""
    environments = {"NVM": make_nvm_environment(1)}
    with tempfile.TemporaryDirectory(prefix="bench_store_") as tmp:
        store = ArtifactStore(Path(tmp) / "artifacts")
        try:
            # Populate: one cold run with the store installed persists
            # every decode/superblock/JIT snapshot when it completes.
            set_artifact_store(store)
            reset_registry()
            baseline = RegressionScheduler().run_system(environments, SC88A)
            assert store.saved >= 1, store.stats()

            def cold_run():
                # What a fresh process without a store does: full
                # predecode + superblock formation + JIT re-heating.
                set_artifact_store(None)
                reset_registry()
                scheduler = RegressionScheduler()
                return scheduler, scheduler.run_system(environments, SC88A)

            def warm_run():
                # A fresh process with the store: registry misses fall
                # through to the on-disk snapshots.
                set_artifact_store(store)
                reset_registry()
                scheduler = RegressionScheduler()
                return scheduler, scheduler.run_system(environments, SC88A)

            # Settle the snapshots: the first warm replays recompile
            # the chains the clamped heats re-trigger and persist them,
            # after which the stamps make every further persist a no-op
            # and the timed samples measure pure restore + execution.
            warm_run()
            warm_run()

            bests, values = interleaved_best(
                config["repeats"], cold_run, warm_run
            )
            cold_elapsed, warm_elapsed = bests
            (_, cold), (warm_scheduler, warm) = values
        finally:
            set_artifact_store(None)
            reset_registry()

        # Byte-identity before any speed claim: a restored cache that
        # changes one verdict, trace entry or cycle count is corruption,
        # not acceleration.
        for report in (cold, warm):
            assert set(report.results) == set(baseline.results)
            for key, result in report.results.items():
                assert strip(result) == strip(baseline.results[key]), key
        # The warm run must have skipped predecode entirely.
        assert warm_scheduler.engine_stats.get("decode_misses", 0) == 0, (
            warm_scheduler.engine_stats
        )
        assert store.hits >= 1 and store.corrupt == 0, store.stats()

    return {
        "runs": baseline.total_runs,
        "artifacts": store.saved,
        "store_hits": store.hits,
        "cold_ms": round(cold_elapsed * 1e3, 3),
        "warm_ms": round(warm_elapsed * 1e3, 3),
        "speedup": round(cold_elapsed / warm_elapsed, 3),
        "min_required": config["min_warm_speedup"],
        "mode": config["mode"],
    }


def run_zero_fault(config) -> dict:
    """Warm matrix with the artifact store installed (what every run
    with ``--store-dir`` pays: registry gauges, stamp-checked persist)
    vs a plain scheduler — identity first, then the ≤5% overhead gate.

    The fleet work-list is opt-in and buys cross-process parallelism,
    not zero cost; its per-cell protocol price (fetch + claim + a
    shared heartbeat + publish + release) is measured and recorded as
    a trend figure, without a floor."""
    environments = make_environments(config)

    def plain_run():
        return RegressionScheduler().run_system(environments, SC88A)

    baseline = plain_run()  # warm build/decode/superblock caches
    # Saturate the JIT across the warm registry so chain compilations
    # stop landing inside timed samples (the trigger fires once per
    # block as its accumulated replays cross the threshold).
    for _ in range(JIT_THRESHOLD):
        plain_run()

    with tempfile.TemporaryDirectory(prefix="bench_fleet0_") as tmp:
        store = ArtifactStore(Path(tmp) / "artifacts")
        fresh = itertools.count()

        def store_run():
            set_artifact_store(store)
            try:
                return RegressionScheduler().run_system(
                    environments, SC88A
                )
            finally:
                set_artifact_store(None)

        def fleet_run():
            # Fresh work-list per sample so every cell is claimed,
            # executed and published — the full protocol cost, never
            # the (much cheaper) fetch-adoption path.
            worklist = WorkList(Path(tmp) / f"wl{next(fresh)}")
            set_artifact_store(store)
            try:
                scheduler = RegressionScheduler(worklist=worklist)
                return worklist, scheduler.run_system(environments, SC88A)
            finally:
                set_artifact_store(None)

        store_run()  # first sample pays the one-time snapshot writes
        bests, values = interleaved_best(
            config["repeats"], plain_run, store_run, fleet_run
        )
        plain_elapsed, store_elapsed, fleet_elapsed = bests
        plain, stored, (worklist, fleet) = values

    for report in (stored, fleet):
        assert set(report.results) == set(plain.results)
        for key, result in report.results.items():
            assert strip(result) == strip(plain.results[key]), key
    # Steady state: the per-run persist must be stamp-cheap, not a
    # re-pickle of every warm image.
    assert store.unchanged >= store.saved, store.stats()
    # Single worker, fresh list: everything executed, nothing adopted,
    # nothing stolen, every cell published exactly once.
    assert fleet.fetched_runs == 0 and fleet.stolen_runs == 0
    assert worklist.claimed == fleet.total_runs, worklist.stats()
    assert worklist.published == fleet.total_runs, worklist.stats()
    assert worklist.corrupt == 0 and worklist.write_errors == 0

    per_cell_us = (
        (fleet_elapsed - plain_elapsed) / fleet.total_runs * 1e6
    )
    return {
        "runs": fleet.total_runs,
        "plain_ms": round(plain_elapsed * 1e3, 3),
        "store_ms": round(store_elapsed * 1e3, 3),
        "fleet_ms": round(fleet_elapsed * 1e3, 3),
        "speedup": round(plain_elapsed / store_elapsed, 3),
        "fleet_protocol_us_per_cell": round(max(0.0, per_cell_us), 1),
        "min_required": config["min_zero_fault_speedup"],
        "mode": config["mode"],
    }


def _fleet_worker(
    workspace: str,
    store_dir: str,
    report_path: str,
    owner: str,
    lease_ttl: float,
    kill_on_first_run: bool,
) -> None:
    """One fleet worker process.  The victim variant SIGKILLs itself at
    its first session start — after claiming a lease, before publishing
    anything — exactly the crash the steal protocol exists for."""
    plan = (
        FaultPlan(
            specs=[FaultSpec(site=SITE_SESSION_RUN, action=ACTION_KILL)]
        )
        if kill_on_first_run
        else None
    )
    worklist = WorkList(store_dir, owner=owner, lease_ttl=lease_ttl)
    scheduler = RegressionScheduler(
        targets=[lookup_target(name) for name in TARGETS],
        executor="serial",
        worklist=worklist,
        fault_plan=plan,
        retries=0,
    )
    environments = {"NVM": load_module_environment(Path(workspace) / "NVM")}
    report = scheduler.run_system(environments, lookup_derivative("sc88a"))
    Path(report_path).write_text(json.dumps({
        "results": {
            "/".join(key): json.dumps(
                result_to_payload(result), sort_keys=True
            )
            for key, result in report.results.items()
        },
        "stats": worklist.stats(),
        "counters": {
            "total": report.total_runs,
            "executed": report.executed_runs,
            "fetched": report.fetched_runs,
            "stolen": report.stolen_runs,
            "quarantined": report.quarantined_runs,
        },
    }, sort_keys=True))


def run_chaos(config) -> dict:
    """SIGKILLed fleet worker + one post-hoc corrupted published result:
    the matrix settles exactly once and the corruption is detected,
    quarantined and re-derived — all verdicts byte-identical to a
    scalar serial oracle."""
    lease_ttl = 1.0
    with tempfile.TemporaryDirectory(prefix="bench_fleet_") as tmp:
        tmp = Path(tmp)
        workspace = write_system_environment(
            make_default_system(
                nvm_tests=config["nvm_tests"], uart_tests=0
            ),
            tmp / "ws",
        )
        environments = {
            "NVM": load_module_environment(Path(workspace) / "NVM")
        }
        derivative = lookup_derivative("sc88a")
        oracle = RegressionScheduler(
            targets=[lookup_target(name) for name in TARGETS],
            executor="serial",
        ).run_system(environments, derivative)
        oracle_bytes = {
            "/".join(key): json.dumps(
                result_to_payload(result), sort_keys=True
            )
            for key, result in oracle.results.items()
        }
        cells = len(oracle_bytes)

        store_dir = tmp / "fleet"
        victim = multiprocessing.Process(
            target=_fleet_worker,
            args=(
                str(workspace), str(store_dir),
                str(tmp / "victim.json"), "victim", lease_ttl, True,
            ),
        )
        victim.start()
        # Let the victim claim its first lease before the survivors
        # start, so a steal is guaranteed to be needed.
        leases = store_dir / "leases"
        deadline = time.time() + 30.0
        while time.time() < deadline:
            if leases.is_dir() and any(leases.glob("*.lease")):
                break
            time.sleep(0.01)
        victim.join(timeout=60.0)
        assert victim.exitcode == -signal.SIGKILL, victim.exitcode
        assert not (tmp / "victim.json").exists()

        survivors = [
            multiprocessing.Process(
                target=_fleet_worker,
                args=(
                    str(workspace), str(store_dir),
                    str(tmp / f"survivor{index}.json"),
                    f"survivor{index}", lease_ttl, False,
                ),
            )
            for index in range(config["fleet_survivors"])
        ]
        for process in survivors:
            process.start()
        for process in survivors:
            process.join(timeout=120.0)
            assert process.exitcode == 0, process.exitcode

        reports = [
            json.loads((tmp / f"survivor{index}.json").read_text())
            for index in range(config["fleet_survivors"])
        ]
        # Exactly-once accounting: os.link publication succeeds once
        # per cell ever, the dead worker's lease was stolen, and every
        # survivor assembled the complete matrix.
        stolen = sum(report["stats"]["stolen"] for report in reports)
        published = sum(report["stats"]["published"] for report in reports)
        assert stolen >= 1, [report["stats"] for report in reports]
        assert published == cells, [report["stats"] for report in reports]
        for report in reports:
            assert report["counters"]["total"] == cells
            assert report["counters"]["quarantined"] == 0
            assert report["results"] == oracle_bytes
        result_files = sorted((store_dir / "results").glob("*.json"))
        assert len(result_files) == cells
        assert not list((store_dir / "results").glob(".*.tmp"))

        # Corrupt one published verdict after the fact: a fresh reader
        # must detect and quarantine it (never trust it) ...
        target_file = result_files[0]
        raw = bytearray(target_file.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        target_file.write_bytes(bytes(raw))
        auditor = WorkList(store_dir, owner="auditor", lease_ttl=lease_ttl)
        assert auditor.fetch(target_file.stem) is None
        assert auditor.corrupt == 1 and auditor.quarantined == 1

        # ... and one more fleet pass re-derives exactly that cell from
        # source while adopting every intact published verdict.
        redo_worklist = WorkList(
            store_dir, owner="rederive", lease_ttl=lease_ttl
        )
        redo = RegressionScheduler(
            targets=[lookup_target(name) for name in TARGETS],
            executor="serial",
            worklist=redo_worklist,
        ).run_system(environments, derivative)
        assert redo.executed_runs == 1 and redo.fetched_runs == cells - 1
        redo_bytes = {
            "/".join(key): json.dumps(
                result_to_payload(result), sort_keys=True
            )
            for key, result in redo.results.items()
        }
        assert redo_bytes == oracle_bytes
        verify = WorkList(store_dir, owner="verify", lease_ttl=lease_ttl)
        for path in sorted((store_dir / "results").glob("*.json")):
            assert verify.fetch(path.stem) is not None
        assert verify.fetched == cells and verify.corrupt == 0

    return {
        "cells": cells,
        "killed_workers": 1,
        "stolen_leases": stolen,
        "published": published,
        "corrupt_detected": auditor.corrupt,
        "quarantined_evidence": auditor.quarantined,
        "rederived_cells": redo.executed_runs,
        "mode": config["mode"],
    }


# ---------------------------------------------------------------------------
# pytest entry points (full configuration)
# ---------------------------------------------------------------------------

def test_warm_start_speedup_gate():
    numbers = run_warm_start(FULL)
    RESULTS["warm_start"] = numbers
    shape(
        f"artifact_store: warm process start at {numbers['speedup']:.3f}x "
        f"of cold re-derivation over {numbers['runs']} runs, zero decode "
        f"misses (floor {FULL['min_warm_speedup']}x)"
    )
    assert numbers["speedup"] >= FULL["min_warm_speedup"], (
        f"warm-start gate: {numbers['speedup']:.3f}x below "
        f"{FULL['min_warm_speedup']}x"
    )


def test_zero_fault_overhead_gate():
    numbers = run_zero_fault(FULL)
    RESULTS["zero_fault"] = numbers
    shape(
        f"artifact_store: store+work-list matrix at "
        f"{numbers['speedup']:.3f}x of plain serial over "
        f"{numbers['runs']} runs (floor {FULL['min_zero_fault_speedup']}x "
        f"= <=5% overhead)"
    )
    assert numbers["speedup"] >= FULL["min_zero_fault_speedup"], (
        f"zero-fault overhead gate: {numbers['speedup']:.3f}x below "
        f"{FULL['min_zero_fault_speedup']}x (more than 5% slower)"
    )


def test_chaos_fleet_and_emit_json():
    numbers = run_chaos(FULL)
    RESULTS["chaos"] = numbers
    shape(
        f"artifact_store: fleet survived {numbers['killed_workers']} "
        f"SIGKILLed worker ({numbers['stolen_leases']} lease(s) stolen) "
        f"and {numbers['corrupt_detected']} corrupt result "
        f"(quarantined + re-derived), verdicts byte-identical"
    )
    path = RESULTS.emit()
    shape(f"artifact_store: wrote {path.name}")


# ---------------------------------------------------------------------------
# script mode: the CI perf-smoke gate
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    config = QUICK if quick else FULL
    try:
        warm_start = run_warm_start(config)
        zero_fault = run_zero_fault(config)
        chaos = run_chaos(config)
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        return 1
    RESULTS["warm_start"] = warm_start
    RESULTS["zero_fault"] = zero_fault
    RESULTS["chaos"] = chaos
    path = RESULTS.emit()
    print(
        f"artifact_store[{config['mode']}]: warm start "
        f"{warm_start['speedup']}x (floor {config['min_warm_speedup']}x), "
        f"zero-fault {zero_fault['speedup']}x (floor "
        f"{config['min_zero_fault_speedup']}x), chaos fleet survived "
        f"{chaos['killed_workers']} kill + {chaos['corrupt_detected']} "
        f"corrupt result -> {path.name}"
    )
    failed = False
    if warm_start["speedup"] < config["min_warm_speedup"]:
        print(
            f"FAIL: warm start {warm_start['speedup']}x below the "
            f"{config['min_warm_speedup']}x floor"
        )
        failed = True
    if zero_fault["speedup"] < config["min_zero_fault_speedup"]:
        print(
            f"FAIL: store+work-list matrix {zero_fault['speedup']}x below "
            f"the {config['min_zero_fault_speedup']}x overhead floor"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
