"""C2 — §1/§2 claim: cross-platform divergence means a platform bug.

Injects a netlist fault into the gate-level simulator only; the
regression must flag exactly that platform, on exactly the tests whose
stimulus reaches the faulty logic.
"""

from repro.core.regression import RegressionRunner
from repro.core.workloads import make_nvm_environment, make_uart_environment
from repro.isa.instructions import Opcode
from repro.platforms import GateLevelSim, NetlistFault

from conftest import shape

FAULT = NetlistFault(
    opcode=int(Opcode.SETB),
    xor_mask=0x1,
    description="mis-synthesized bit-set unit: output bit 0 crossed",
)


def faulty_runner():
    # The matrix rides the batched lock-step engine: healthy platforms
    # run as lanes of one cohort and the divergence attribution works
    # from per-lane results instead of six independent re-runs.  The
    # overridden (faulty) gate-level platform executes on its own
    # scalar session as before — overrides bypass batching by design.
    return RegressionRunner(
        platform_overrides={"gatelevel": GateLevelSim(fault=FAULT)},
        executor="batch",
    )


def test_c2_fault_attributed_to_gatelevel(benchmark):
    env = make_nvm_environment(3)
    report = benchmark.pedantic(
        faulty_runner().run_environment, args=(env, __import__(
            "repro.soc.derivatives", fromlist=["SC88A"]).SC88A),
        rounds=1,
        iterations=1,
    )
    suspects = report.suspect_platforms()
    assert set(suspects) == {"gatelevel"}
    assert suspects["gatelevel"] == 3
    assert report.batched_runs > 0  # the healthy lanes ran lock-step
    shape(
        "C2: injected netlist fault -> regression attributes "
        f"{suspects['gatelevel']} divergent tests to 'gatelevel' only"
    )


def test_c2_unrelated_suite_unaffected(benchmark):
    """Tests that never exercise the faulty unit stay green everywhere —
    divergence localises both the platform AND the functional area."""
    from repro.soc.derivatives import SC88A

    env = make_uart_environment(2)
    report = benchmark.pedantic(
        faulty_runner().run_environment,
        args=(env, SC88A),
        rounds=1,
        iterations=1,
    )
    assert report.divergences == []
    shape(
        "C2: UART suite (no SETB in its stimulus) shows 0 divergences "
        "on the same faulty netlist"
    )


def test_c2_healthy_fleet_is_silent(benchmark):
    from repro.soc.derivatives import SC88A

    env = make_nvm_environment(2)
    report = benchmark.pedantic(
        RegressionRunner(executor="batch").run_environment,
        args=(env, SC88A),
        rounds=1,
        iterations=1,
    )
    assert report.clean
    assert report.batched_runs > 0
    shape("C2 control: healthy fleet -> 0 divergences")
