"""F6 — Figure 6: global defines absorb spec and derivative changes.

The paper's first worked example: two tests INSERT a page value into a
control-register field.  We reproduce both change scenarios:

(a) *specification change* — the field moves by one bit (sc88a -> sc88c);
(b) *derivative change* — the field widens 5 -> 6 bits (sc88a -> sc88b);

and measure the edit cost: the ADVM side edits only the abstraction
layer (here: the generated per-derivative block), the hardwired baseline
edits every test.
"""

from repro.core.metrics import diff_files
from repro.core.porting import compare_nvm_port
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import (
    make_nvm_environment,
    nvm_test_hardwired,
)
from repro.soc.derivatives import SC88A, SC88B, SC88C

from conftest import shape

SUITE = 6


def test_fig6_spec_change_shift(benchmark):
    """Field shifted by one bit: tests pass on both variants unmodified."""
    comparison = benchmark(compare_nvm_port, SUITE, [SC88A], SC88C)
    assert comparison.advm.all_pass
    advm_touched = [
        d.filename for d in comparison.advm.effort.diffs if d.touched
    ]
    assert advm_touched == ["Globals.inc"]
    assert comparison.baseline.effort.files_touched == SUITE
    shape(
        f"F6(a) spec shift: ADVM edits 1 file "
        f"({comparison.advm.effort.lines_changed} lines); baseline edits "
        f"{comparison.baseline.effort.files_touched} test files "
        f"({comparison.baseline.effort.lines_changed} lines)"
    )


def test_fig6_derivative_change_widen(benchmark):
    """Field widened 5 -> 6 bits (more pages): same picture."""
    comparison = benchmark(compare_nvm_port, SUITE, [SC88A], SC88B)
    assert comparison.advm.all_pass and comparison.baseline.all_pass
    assert comparison.factors["files_factor"] == SUITE
    shape(
        f"F6(b) field widened: files saving factor = "
        f"{comparison.factors['files_factor']:.0f}x at N={SUITE} tests"
    )


def test_fig6_hardwired_diff_localises_the_pain(benchmark):
    """Show *what* changes in a hardwired test between derivatives: the
    INSERT operands — exactly the values Figure 6 moves into defines."""
    defines = make_nvm_environment(1).defines
    before = nvm_test_hardwired(1, defines, SC88A, TARGET_GOLDEN)
    after = nvm_test_hardwired(1, defines, SC88C, TARGET_GOLDEN)
    diff = benchmark.pedantic(
        diff_files, args=("test1", before, after), rounds=1, iterations=1
    )
    assert diff.touched
    assert "INSERT d14, d14, 10, 0, 5" in before
    assert "INSERT d14, d14, 10, 1, 5" in after  # pos 0 -> 1
    shape(
        f"F6: hardwired INSERT operands changed between derivatives "
        f"({diff.changed} lines per test x N tests)"
    )
