"""C7 — §3 claim: release labels give stable regressions.

"The test environment is not stable during any development of the
abstraction layer, unless frozen via a release label."  We mutate the
live abstraction layer mid-regression: the frozen run is bit-stable and
green; the live run changes behaviour (here: breaks).
"""

from repro.core.release import ReleaseManager
from repro.core.workloads import make_nvm_environment, make_uart_environment
from repro.soc.derivatives import SC88A

from conftest import shape


def test_c7_frozen_regression_survives_live_mutation(benchmark):
    def scenario():
        manager = ReleaseManager()
        env = make_nvm_environment(2)
        manager.create_label("NVM_R1.0", env)
        frozen = manager.frozen("NVM_R1.0")

        # Regression starts against the frozen label...
        first = frozen.run_test("TEST_NVM_PAGE_001", SC88A)

        # ...while a developer breaks the live abstraction layer.
        env.defines.set_extra("TEST1_TARGET_PAGE", 999_999)
        dirty = manager.is_dirty("NVM_R1.0")

        # The frozen regression continues unaffected.
        second = frozen.run_test("TEST_NVM_PAGE_001", SC88A)
        live = env.run_test("TEST_NVM_PAGE_001", SC88A)
        return first, second, live, dirty

    first, second, live, dirty = benchmark.pedantic(
        scenario, rounds=1, iterations=1
    )
    assert first.passed and second.passed
    assert not live.passed
    assert dirty
    shape(
        "C7: frozen label stays green through live mutation "
        "(live run fails, dirty-flag raised)"
    )


def test_c7_system_label_composition(benchmark):
    """System regressions run against a label composed of sub-labels,
    released by a single owner."""

    def scenario():
        manager = ReleaseManager()
        nvm = make_nvm_environment(1)
        uart = make_uart_environment(1)
        manager.create_label("NVM_R1", nvm)
        manager.create_label("UART_R2", uart)
        manager.compose_system_label(
            "SYS_2026_06", {"NVM": "NVM_R1", "UART": "UART_R2"}
        )
        frozen = manager.frozen_system("SYS_2026_06")
        results = {}
        for env_name, frozen_env in frozen.items():
            for cell_name, result in frozen_env.run_all(SC88A).items():
                results[(env_name, cell_name)] = result.passed
        return results

    results = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert all(results.values())
    shape(
        f"C7: system label SYS_2026_06[NVM=NVM_R1, UART=UART_R2] runs "
        f"{len(results)} frozen tests green"
    )


def test_c7_label_digest_detects_drift(benchmark):
    def scenario():
        manager = ReleaseManager()
        env = make_nvm_environment(1)
        manager.create_label("R1", env)
        clean_before = not manager.is_dirty("R1")
        env.defines.set_extra("NEW_KNOB", 1)
        dirty_after = manager.is_dirty("R1")
        return clean_before, dirty_after

    clean_before, dirty_after = benchmark.pedantic(
        scenario, rounds=1, iterations=1
    )
    assert clean_before and dirty_after
    shape("C7: content digest flags abstraction-layer drift after release")
