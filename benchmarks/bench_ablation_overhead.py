"""Ablation — §5: "this style of coding introduces some overhead ...
but with more readable and controllable code this overhead is
acceptable."

Quantifies the runtime and image-size overhead the abstraction layer
costs at execution time (wrapper calls, generality in the base
functions) by running the semantically-identical ADVM and hardwired NVM
tests and comparing instructions, cycles and image bytes.  The paper
accepts a modest constant overhead; a blow-up would falsify the
trade-off.
"""

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.environment import GlobalLayer
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import make_nvm_environment, nvm_test_hardwired
from repro.soc.derivatives import SC88A
from repro.soc.embedded import assemble_embedded_software

from conftest import shape


def build_hardwired_image(index: int = 1):
    env = make_nvm_environment(index, derivatives=[SC88A])
    source = nvm_test_hardwired(index, env.defines, SC88A, TARGET_GOLDEN)
    assembler = Assembler(predefines={SC88A.predefine: 1})
    layer = GlobalLayer([SC88A])
    objects = [
        assembler.assemble_source(source, "hardwired.asm"),
        assembler.assemble_source(
            layer.trap_handlers_text, "Trap_Handlers.asm"
        ),
        assemble_embedded_software(SC88A.es_version, assembler),
    ]
    memory_map = SC88A.memory_map()
    return Linker(
        text_base=memory_map.text_base, data_base=memory_map.data_base
    ).link(objects)


def test_ablation_runtime_overhead(benchmark):
    env = make_nvm_environment(1)

    def run_both():
        advm_artifacts = env.build_image(
            "TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN
        )
        advm = TARGET_GOLDEN.make_platform().run(
            advm_artifacts.image, SC88A
        )
        hardwired_image = build_hardwired_image(1)
        hardwired = TARGET_GOLDEN.make_platform().run(
            hardwired_image, SC88A
        )
        return advm, hardwired, advm_artifacts.image, hardwired_image

    advm, hardwired, advm_image, hardwired_image = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert advm.passed and hardwired.passed
    instruction_overhead = advm.instructions / hardwired.instructions
    cycle_overhead = advm.cycles / hardwired.cycles
    # "acceptable": the abstraction layer costs a small constant factor,
    # not an order of magnitude.
    assert instruction_overhead < 3.0
    assert cycle_overhead < 3.0
    shape(
        f"ablation: ADVM runtime overhead = "
        f"{instruction_overhead:.2f}x instructions, "
        f"{cycle_overhead:.2f}x cycles over hardwired "
        f"({advm.instructions} vs {hardwired.instructions} instructions)"
    )


def test_ablation_image_size_overhead(benchmark):
    env = make_nvm_environment(1)

    def measure():
        advm = env.build_image(
            "TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN
        ).image.total_bytes
        hardwired = build_hardwired_image(1).total_bytes
        return advm, hardwired

    advm_bytes, hardwired_bytes = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    ratio = advm_bytes / hardwired_bytes
    # The library is linked whole; at one test the overhead peaks and it
    # amortises across a suite.  Bound it at one order of magnitude.
    assert ratio < 10.0
    shape(
        f"ablation: image size {advm_bytes} B (ADVM, full library linked) "
        f"vs {hardwired_bytes} B (hardwired) = {ratio:.1f}x at N=1; "
        "amortises across the suite"
    )


def test_ablation_overhead_amortises(benchmark):
    """Per-test marginal image cost: the library is shared, so each
    additional ADVM test adds only its own small object."""
    env = make_nvm_environment(4)

    def marginal():
        sizes = []
        for name in sorted(env.cells):
            artifacts = env.build_image(name, SC88A, TARGET_GOLDEN)
            sizes.append(artifacts.test_object.total_size)
        return sizes

    sizes = benchmark.pedantic(marginal, rounds=1, iterations=1)
    library_size = (
        make_nvm_environment(1)
        .build_image("TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN)
        .base_functions_object.total_size
    )
    assert max(sizes) < library_size  # each test smaller than the library
    shape(
        f"ablation: per-test object = {sizes} bytes each vs "
        f"{library_size}-byte shared library — overhead amortises"
    )
