"""Dispatch benchmarks: executor-table dispatch + event-horizon ticking.

Records the numbers ISSUE 3 ties the execution core to, against an
in-benchmark emulation of the pre-PR engine (the ``if/elif`` opcode
chain on every retire via ``use_exec_table=False``, and the per-step
session loop that walks every peripheral after every instruction via
``use_block_run=False``):

- interpreter instructions/sec on an ALU/branch/memory loop,
  **untraced** — the configuration the verdict matrix spends its time
  in — asserting the >= 1.5x target and byte-identical
  ``(signature, cycles, instructions)``;
- byte-identical architectural outcomes — signature, cycles, retire
  trace, interrupt delivery cycles — between table+horizon and the
  legacy per-step/per-tick path across the interrupt-heavy example
  suites (timer IRQ, watchdog service, UART) on golden and RTL;
- the mechanism observable: how many peripheral tick *walks* the
  event-horizon scheduler performs vs the per-instruction loop.

Emits ``BENCH_dispatch.json`` next to the repository root so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import time

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.workloads import (
    make_timer_environment,
    make_uart_environment,
)
from repro.core.targets import TARGET_GOLDEN, TARGET_RTL
from repro.platforms import ExecutionSession, GoldenModel, RtlSim
from repro.soc.derivatives import SC88A
from repro.soc.device import PASS_MAGIC

from conftest import shape
from _harness import engine_matrix, BenchResults, best_rate, strip_result as strip

MEMORY_MAP = SC88A.memory_map()

LOOP_ITERATIONS = 40_000

#: The untraced interpreter loop the 1.5x target is asserted on: a mix
#: of ALU, flag-setting, branch and word-memory work, so the win
#: reflects the whole dispatch surface rather than one opcode family.
WORKLOAD_SOURCE = f"""\
_main:
    LOAD a1, {MEMORY_MAP.ram.base:#x}
    LOAD d1, {LOOP_ITERATIONS}
loop:
    ADDI d2, d2, 3
    XOR d3, d3, d2
    SHLI d4, d2, 5
    ST.W [a1], d4
    LD.W d5, [a1]
    SUB d6, d5, d3
    CMPI d6, 0
    JZ skip
    ANDI d6, d6, 0xFF
skip:
    DJNZ d1, loop
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""

RESULTS = BenchResults("dispatch")
RESULTS["engine_matrix"] = engine_matrix(
    candidate={"use_block_run": True},
    reference={"use_block_run": False},
)


def link_source(source: str):
    obj = Assembler().assemble_source(source, "bench.asm")
    return Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])


def make_session(platform_cls, *, legacy: bool) -> ExecutionSession:
    """A session in the new configuration, or the pre-PR emulation:
    ``if/elif`` chain on every retire, one peripheral walk per
    instruction."""
    session = ExecutionSession(
        platform_cls(), SC88A, use_block_run=not legacy
    )
    session.cpu.use_exec_table = not legacy
    return session


def timed_run(image, *, legacy: bool):
    session = make_session(GoldenModel, legacy=legacy)
    start = time.perf_counter()
    result = session.run(image)
    elapsed = time.perf_counter() - start
    assert result.signature == PASS_MAGIC
    return result.instructions / elapsed, result


def test_untraced_dispatch_speedup():
    image = link_source(WORKLOAD_SOURCE)
    legacy_ips, (legacy,) = best_rate(
        3, lambda: timed_run(image, legacy=True)
    )
    fast_ips, (fast,) = best_rate(
        3, lambda: timed_run(image, legacy=False)
    )
    # Byte-identical architecture before any speed claim.
    assert (fast.signature, fast.cycles, fast.instructions) == (
        legacy.signature,
        legacy.cycles,
        legacy.instructions,
    )
    speedup = fast_ips / legacy_ips
    RESULTS["untraced"] = {
        "legacy_ips": round(legacy_ips),
        "fast_ips": round(fast_ips),
        "speedup": round(speedup, 2),
        "cycles_identical": True,
    }
    shape(
        "dispatch: untraced interpreter loop "
        f"{legacy_ips:,.0f} -> {fast_ips:,.0f} instr/sec "
        f"({speedup:.2f}x with executor table + event horizons)"
    )
    assert speedup >= 1.5, (
        f"dispatch speedup {speedup:.2f}x below 1.5x target"
    )


def test_outcomes_identical_across_irq_suites():
    """Signature, cycles, retire trace and interrupt delivery timing
    must be byte-identical between the new engine and the per-step/
    per-tick reference across the interrupt-heavy suites."""
    cells_checked = 0
    for make_env in (make_timer_environment, lambda: make_uart_environment(2)):
        env = make_env()
        for tgt, platform_cls in (
            (TARGET_GOLDEN, GoldenModel),
            (TARGET_RTL, RtlSim),
        ):
            for cell_name in env.cells:
                image = env.build_image(cell_name, SC88A, tgt).image
                fast = make_session(platform_cls, legacy=False).run(image)
                reference = make_session(platform_cls, legacy=True).run(
                    image
                )
                assert strip(fast) == strip(reference), (
                    platform_cls.__name__,
                    cell_name,
                )
                assert fast.passed, cell_name
                cells_checked += 1
    RESULTS["irq_suites_byte_identical"] = {
        "cells": cells_checked,
        "platforms": ["golden", "rtl"],
    }
    shape(
        f"dispatch: {cells_checked} interrupt-heavy runs byte-identical "
        "(signature, cycles, trace, IRQ timing) to per-step/per-tick"
    )


def test_event_horizon_tick_walk_savings_and_emit_json():
    """The mechanism observable: the scheduler walks the peripheral
    list once per horizon, not once per instruction."""
    env = make_timer_environment()
    image = env.build_image("TEST_TIMER_DELAY_002", SC88A, TARGET_GOLDEN).image

    def count_tick_walks(legacy: bool) -> tuple[int, int]:
        session = make_session(GoldenModel, legacy=legacy)
        soc = session.soc
        walks = 0
        original_tick = soc.tick

        def counting_tick(cycles=1):
            nonlocal walks
            walks += 1
            original_tick(cycles)

        soc.tick = counting_tick
        result = session.run(image)
        assert result.passed
        return walks, result.instructions

    legacy_walks, instructions = count_tick_walks(legacy=True)
    batched_walks, batched_instructions = count_tick_walks(legacy=False)
    assert batched_instructions == instructions
    assert legacy_walks == instructions  # one walk per retire
    assert batched_walks < legacy_walks
    RESULTS["tick_walks"] = {
        "instructions": instructions,
        "per_step_walks": legacy_walks,
        "event_horizon_walks": batched_walks,
        "reduction": round(legacy_walks / batched_walks, 1),
    }
    shape(
        "dispatch: peripheral walks for a timer-driven run "
        f"{legacy_walks} -> {batched_walks} "
        f"({legacy_walks / batched_walks:.1f}x fewer with event horizons)"
    )

    path = RESULTS.emit()
    shape(f"dispatch: wrote {path.name}")
