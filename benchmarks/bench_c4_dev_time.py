"""C4 — §5 claim: test development time drops once base functions exist.

Proxy: the size (LoC) and assembly cost of a new test written with the
base-function library vs the same behaviour written without it, and how
the advantage accumulates over a suite.
"""

from repro.core.metrics import loc
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import (
    make_nvm_environment,
    nvm_test_advm,
    nvm_test_hardwired,
)
from repro.soc.derivatives import SC88A

from conftest import shape


def test_c4_loc_per_new_test(benchmark):
    defines = make_nvm_environment(8).defines

    def measure():
        advm_loc = [
            loc(nvm_test_advm(index).source) for index in range(1, 9)
        ]
        hardwired_loc = [
            loc(nvm_test_hardwired(index, defines, SC88A, TARGET_GOLDEN))
            for index in range(1, 9)
        ]
        return advm_loc, hardwired_loc

    advm_loc, hardwired_loc = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    mean_advm = sum(advm_loc) / len(advm_loc)
    mean_hardwired = sum(hardwired_loc) / len(hardwired_loc)
    assert mean_advm < mean_hardwired
    shape(
        f"C4: new NVM test = {mean_advm:.0f} LoC with base functions vs "
        f"{mean_hardwired:.0f} LoC without "
        f"({mean_hardwired / mean_advm:.1f}x)"
    )


def test_c4_cumulative_suite_loc(benchmark):
    """Over a growing suite the library amortises: total test-layer LoC
    grows much slower in ADVM style."""
    defines = make_nvm_environment(12).defines

    def cumulative():
        advm_total = 0
        hardwired_total = 0
        rows = []
        for index in range(1, 13):
            advm_total += loc(nvm_test_advm(index).source)
            hardwired_total += loc(
                nvm_test_hardwired(index, defines, SC88A, TARGET_GOLDEN)
            )
            rows.append((index, advm_total, hardwired_total))
        return rows

    rows = benchmark.pedantic(cumulative, rounds=1, iterations=1)
    final_n, advm_total, hardwired_total = rows[-1]
    assert advm_total < hardwired_total
    shape(
        f"C4: suite of {final_n} tests = {advm_total} test-layer LoC "
        f"(ADVM) vs {hardwired_total} LoC (hardwired)"
    )


def test_c4_assembly_throughput(benchmark):
    """Build cost of one ADVM test cell (assemble + link all layers) —
    the turnaround a test developer iterates on."""
    env = make_nvm_environment(1)
    artifacts = benchmark(
        env.build_image, "TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN
    )
    assert artifacts.image.total_bytes > 0
    shape(
        f"C4: full build of one test cell = {artifacts.image.total_bytes} "
        "image bytes (see timing table)"
    )
