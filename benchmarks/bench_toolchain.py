"""Toolchain throughput: assembler, linker and platform performance.

Not a paper figure, but the supporting table any adopter asks for: how
fast the substrate is, and that build cost scales linearly in source
size (no accidental quadratic behaviour in the two-pass design).
"""

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import make_nvm_environment
from repro.platforms import GoldenModel, RtlSim
from repro.soc.derivatives import SC88A

from conftest import shape

MEMORY_MAP = SC88A.memory_map()


def synthetic_source(instruction_count: int) -> str:
    lines = ["_main:"]
    for index in range(instruction_count):
        register = index % 10
        lines.append(f"    ADDI d{register}, d{register}, 1")
    lines.append("    HALT")
    return "\n".join(lines) + "\n"


def test_assembler_throughput(benchmark):
    source = synthetic_source(2_000)
    obj = benchmark(Assembler().assemble_source, source, "big.asm")
    assert obj.section("text").size == (2_000 + 1) * 4
    shape("toolchain: assembled 2000-instruction unit (see timing table)")


def test_assembler_scales_linearly(benchmark):
    import time

    def measure():
        Assembler().assemble_source(synthetic_source(500), "warmup.asm")
        timings = []
        for count in (500, 1_000, 2_000, 4_000):
            source = synthetic_source(count)
            best = min(
                _timed(lambda: Assembler().assemble_source(source, "s.asm"))
                for _ in range(3)
            )
            timings.append((count, best))
        return timings

    def _timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    per_line = [elapsed / count for count, elapsed in timings]
    # No worse than 5x drift in time-per-line across an 8x size range
    # (a quadratic pass would show >= 8x).
    assert max(per_line) / min(per_line) < 5.0, per_line
    shape(
        "toolchain: time/line stable across 500..4000-instruction units "
        f"(spread {max(per_line) / min(per_line):.2f}x) — two-pass "
        "assembly is linear"
    )


def test_link_throughput(benchmark):
    env = make_nvm_environment(1)
    tgt = TARGET_GOLDEN
    from repro.assembler.assembler import Assembler as Asm

    assembler = Asm(
        provider=env._provider(),
        predefines={SC88A.predefine: 1, tgt.predefine: 1},
    )
    objects = [
        assembler.assemble_file("TEST_NVM_PAGE_001.asm"),
        assembler.assemble_file("Base_Functions.asm"),
        assembler.assemble_file("Trap_Handlers.asm"),
        assembler.assemble_file("Global_Test_Functions.asm"),
    ]
    from repro.soc.embedded import assemble_embedded_software

    objects.append(assemble_embedded_software(1, assembler))
    linker = Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    )
    image = benchmark(linker.link, objects)
    assert image.entry is not None
    shape(f"toolchain: linked {len(objects)} objects, {image.total_bytes} bytes")


def test_golden_model_mips(benchmark):
    source = synthetic_source(1_000)
    obj = Assembler().assemble_source(source, "mips.asm")
    image = Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])
    platform = GoldenModel()
    result = benchmark(platform.run, image, SC88A)
    assert result.instructions == 1_001
    shape("toolchain: golden-model execution rate in the timing table")


def test_rtl_slower_than_golden(benchmark):
    import time

    source = synthetic_source(1_000)
    obj = Assembler().assemble_source(source, "cmp.asm")
    image = Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])

    def run_both():
        start = time.perf_counter()
        GoldenModel().run(image, SC88A)
        golden_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        rtl = RtlSim().run(image, SC88A)
        rtl_elapsed = time.perf_counter() - start
        return golden_elapsed, rtl_elapsed, rtl

    golden_elapsed, rtl_elapsed, rtl = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert rtl.cycles > 1_001  # waits charged
    shape(
        f"toolchain: RTL charges wait states ({rtl.cycles} cycles for "
        "1001 instructions); wall-clock comparable in this model"
    )
