"""Fault-tolerant execution benchmarks (ISSUE 7).

The supervision layer (per-payload futures, retry/quarantine ladder,
checksummed result cache, batch-lane degradation) must be free when
nothing fails and effective when things do.  This bench records both
acceptance numbers ISSUE 7 ties the layer to:

- **zero-fault overhead**: the warm six-platform matrix through the
  supervised serial scheduler vs the same work-list driven through raw
  unsupervised ``ExecutionSession`` loops — verdicts byte-identical,
  and the supervised path at most 5% slower (``speedup >= 0.95``, the
  committed ``bench_trend`` floor);
- **chaos completion**: a seeded :class:`~repro.core.faults.FaultPlan`
  that SIGKILLs one process-pool worker mid-matrix plus two injected
  cache corruptions on the warm pass — both regressions complete, the
  healthy verdicts match a fault-free run byte-for-byte, nothing is
  quarantined (the kill is transient, the corrupt entries re-execute),
  and the cache counts the corruption instead of replaying it.

Emits ``BENCH_resilience.json`` next to the repository root.  Also
runnable as a script: ``python benchmarks/bench_resilience.py
[--quick]`` — the CI perf-smoke job uses ``--quick`` and fails the
build if the overhead gate or any identity assertion trips.
"""

from __future__ import annotations

import sys
import tempfile

from repro.core.faults import (
    ACTION_CORRUPT,
    ACTION_KILL,
    FaultPlan,
    FaultSpec,
    SITE_CACHE_READ,
    SITE_WORKER_BOOT,
)
from repro.core.scheduler import RegressionScheduler, ResultCache
from repro.core.workloads import make_nvm_environment, make_uart_environment
from repro.platforms import ExecutionSession
from repro.soc.derivatives import SC88A

from conftest import shape
from _harness import engine_matrix, BenchResults, best_of, strip_result as strip

RESULTS = BenchResults("resilience")
RESULTS["engine_matrix"] = engine_matrix(
    candidate={"supervision": True},
    reference={"supervision": False, "note": "raw sessions"},
)

#: Full (pytest/CI bench) and quick (perf-smoke gate) configurations.
FULL = {
    "nvm_tests": 2,
    "uart_tests": 1,
    "repeats": 3,
    "min_speedup": 0.95,  # supervised may cost at most 5%
    "mode": "full",
}
QUICK = {
    "nvm_tests": 1,
    "uart_tests": 0,
    "repeats": 2,
    "min_speedup": 0.95,
    "mode": "quick",
}


def make_environments(config):
    environments = {"NVM": make_nvm_environment(config["nvm_tests"])}
    if config["uart_tests"]:
        environments["UART"] = make_uart_environment(config["uart_tests"])
    return environments


def run_zero_fault(config) -> dict:
    """Supervised serial scheduler vs raw unsupervised session loops on
    the same warm matrix — identity first, then the overhead gate."""
    environments = make_environments(config)
    scheduler = RegressionScheduler()

    def raw_matrix():
        # What the pre-supervision serial executor did: same memoised
        # work-list, one long-lived session per target, no retry
        # ladder, no deadline bookkeeping.
        work = scheduler._work_list(environments, SC88A)
        sessions = {}
        results = {}
        for request, image, tgt in work:
            session = sessions.get(tgt.name)
            if session is None:
                session = ExecutionSession(tgt.make_platform(), SC88A)
                sessions[tgt.name] = session
            results[
                (request.environment, request.cell, request.target)
            ] = session.run(image)
        return results

    def supervised_matrix():
        return RegressionScheduler().run_system(environments, SC88A)

    # Warm every cache (build, decode, superblock templates) first.
    raw_matrix()
    supervised_matrix()

    raw_elapsed, raw_results = best_of(config["repeats"], raw_matrix)
    supervised_elapsed, report = best_of(
        config["repeats"], supervised_matrix
    )
    # Byte-identity before any speed claim: supervision must not change
    # a single verdict, trace entry or cycle count.
    assert set(report.results) == set(raw_results)
    for key, result in report.results.items():
        assert strip(result) == strip(raw_results[key]), key
    assert report.retried_runs == 0
    assert report.quarantined_runs == 0
    assert report.degraded_runs == 0

    return {
        "runs": report.total_runs,
        "raw_ms": round(raw_elapsed * 1e3, 3),
        "supervised_ms": round(supervised_elapsed * 1e3, 3),
        "speedup": round(raw_elapsed / supervised_elapsed, 3),
        "min_required": config["min_speedup"],
        "mode": config["mode"],
    }


def run_chaos(config) -> dict:
    """One SIGKILLed worker + two corrupt cache entries: both passes
    complete with healthy verdicts byte-identical to a fault-free run."""
    environments = make_environments(config)
    baseline = RegressionScheduler().run_system(environments, SC88A)

    with tempfile.TemporaryDirectory(prefix="bench_resilience_") as tmp:
        # Cold pass: the rtl payload's worker is SIGKILLed on its first
        # attempt; the pool is rebuilt and the retry succeeds.
        kill_plan = FaultPlan(seed=7, specs=[
            FaultSpec(site=SITE_WORKER_BOOT, action=ACTION_KILL,
                      match="rtl#0", times=1),
        ])
        cold_cache = ResultCache(tmp)
        cold = RegressionScheduler(
            jobs=2,
            executor="process",
            cache=cold_cache,
            fault_plan=kill_plan,
            backoff_base=0.001,
        ).run_system(environments, SC88A)
        assert cold.total_runs == baseline.total_runs
        assert cold.quarantined_runs == 0
        assert cold.retried_runs >= 1
        for key, result in cold.results.items():
            assert strip(result) == strip(baseline.results[key]), key

        # Warm pass: two cache reads come back corrupted; the cache
        # counts and quarantines them and the cells re-execute.
        corrupt_plan = FaultPlan(seed=7, specs=[
            FaultSpec(site=SITE_CACHE_READ, action=ACTION_CORRUPT,
                      times=2),
        ])
        warm_cache = ResultCache(tmp)
        warm = RegressionScheduler(
            cache=warm_cache, fault_plan=corrupt_plan
        ).run_system(environments, SC88A)
        assert warm.total_runs == baseline.total_runs
        assert warm_cache.corrupt == 2
        assert warm.executed_runs == 2
        assert warm.cached_runs == warm.total_runs - 2
        for key, result in warm.results.items():
            assert strip(result) == strip(baseline.results[key]), key

    return {
        "runs": baseline.total_runs,
        "killed_workers": 1,
        "cold_retried_runs": cold.retried_runs,
        "cold_quarantined_runs": cold.quarantined_runs,
        "corrupt_cache_entries": warm_cache.corrupt,
        "warm_reexecuted_runs": warm.executed_runs,
        "mode": config["mode"],
    }


# ---------------------------------------------------------------------------
# pytest entry points (full configuration)
# ---------------------------------------------------------------------------

def test_zero_fault_overhead_gate():
    numbers = run_zero_fault(FULL)
    RESULTS["zero_fault"] = numbers
    shape(
        f"resilience: supervised matrix at {numbers['speedup']:.3f}x of "
        f"raw sessions over {numbers['runs']} runs (floor "
        f"{FULL['min_speedup']}x = <=5% overhead)"
    )
    assert numbers["speedup"] >= FULL["min_speedup"], (
        f"supervision overhead gate: {numbers['speedup']:.3f}x below "
        f"{FULL['min_speedup']}x (more than 5% slower than raw)"
    )


def test_chaos_completion_and_emit_json():
    numbers = run_chaos(FULL)
    RESULTS["chaos"] = numbers
    shape(
        f"resilience: chaos matrix completed with {numbers['killed_workers']} "
        f"killed worker and {numbers['corrupt_cache_entries']} corrupt "
        "cache entries, healthy verdicts byte-identical"
    )
    path = RESULTS.emit()
    shape(f"resilience: wrote {path.name}")


# ---------------------------------------------------------------------------
# script mode: the CI perf-smoke gate
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    config = QUICK if quick else FULL
    try:
        zero_fault = run_zero_fault(config)
        chaos = run_chaos(config)
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        return 1
    RESULTS["zero_fault"] = zero_fault
    RESULTS["chaos"] = chaos
    path = RESULTS.emit()
    print(
        f"resilience[{config['mode']}]: supervision at "
        f"{zero_fault['speedup']}x of raw (floor "
        f"{config['min_speedup']}x), chaos run survived "
        f"{chaos['killed_workers']} killed worker + "
        f"{chaos['corrupt_cache_entries']} corrupt entries "
        f"-> {path.name}"
    )
    if zero_fault["speedup"] < config["min_speedup"]:
        print(
            f"FAIL: supervised matrix {zero_fault['speedup']}x below "
            f"the {config['min_speedup']}x overhead floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
