"""Memory-system benchmarks: O(1) dispatch and zero-allocation tracing.

Records the numbers ISSUE 2 ties the memory system to, against an
in-benchmark emulation of the pre-PR bus (linear mapping scan, generic
device access, per-access ``BusAccess`` allocation for trace hooks, and
the decode cache forced off whenever the bus is observed):

- interpreter instructions/sec on a memory-heavy loop, **untraced**,
  decode cache on for both sides — isolates the page dispatch table and
  the struct word fast path (>= 1.3x target);
- interpreter instructions/sec on a **traced coverage run** (bus trace
  recorded and drained into the coverage collector) — the run class the
  paper cares most about, previously forced onto the slow path
  (>= 3x target), asserting the decode cache stayed active while the
  trace was recorded and that coverage bins and divergence verdicts are
  identical to the legacy observation pipeline;
- wall-time of a full session-level coverage run over an NVM module
  environment (reported, not asserted).

Emits ``BENCH_memsys.json`` next to the repository root so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import time

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.coverage import CoverageCollector
from repro.core.tracediff import compare_traces
from repro.core.workloads import make_nvm_environment
from repro.core.targets import TARGET_GOLDEN
from repro.isa.decodecache import decode_cache_for
from repro.isa.instructions import Opcode
from repro.platforms import (
    ExecutionSession,
    GateLevelSim,
    GoldenModel,
    NetlistFault,
)
from repro.platforms.cpu import CpuCore
from repro.soc.bus import Bus, BusAccess, BusError, BusTrace
from repro.soc.derivatives import SC88A
from repro.soc.device import FAIL_MAGIC, PASS_MAGIC, SystemOnChip

from conftest import shape
from _harness import engine_matrix, BenchResults, best_rate

MEMORY_MAP = SC88A.memory_map()
REGISTER_MAP = SC88A.register_map()

LOOP_ITERATIONS = 12_000
MAX_STEPS = 2_000_000

#: Memory-heavy loop: eight data-bus accesses and one SFR write per
#: iteration, so routing and tracing costs dominate over ALU work.
WORKLOAD_SOURCE = f"""\
_main:
    LOAD a1, {MEMORY_MAP.ram.base:#x}
    LOAD d1, {LOOP_ITERATIONS}
loop:
    ST.W [a1], d2
    LD.W d3, [a1 + 4]
    PUSH d3
    POP d4
    ST.W [a1 + 8], d4
    LD.W d5, [a1 + 8]
    PUSH a1
    POP a2
    STORE [{REGISTER_MAP.register_address("TIMER.TIM_RELOAD"):#x}], d2
    ADDI d2, d2, 1
    DJNZ d1, loop
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""

RESULTS = BenchResults("memsys")
RESULTS["engine_matrix"] = engine_matrix(
    candidate={"use_decode_cache": True},
    reference={"use_decode_cache": False},
)


def link_source(source: str):
    obj = Assembler().assemble_source(source, "bench.asm")
    return Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])


def make_legacy(soc) -> None:
    """Downgrade *soc*'s bus to the pre-PR memory system: swap in
    :class:`LegacyBus` and empty the dispatch table so the core's
    inline word accessors always miss and fall back to it."""
    soc.bus.__class__ = LegacyBus
    soc.bus.page_table.clear()


class LegacyBus(Bus):
    """The pre-dispatch-table bus, for baseline measurement: linear
    mapping scan, generic device access, and a ``BusAccess`` object
    allocated per traced access."""

    def mapping_for(self, address, length):
        for mapping in self.mappings:
            if mapping.contains(address, length):
                return mapping
        raise BusError(f"unmapped address {address:#010x}", address)

    def read(self, address, size):
        if address % size:
            raise BusError(f"misaligned read at {address:#010x}", address)
        mapping = self.mapping_for(address, size)
        value = mapping.device.read(address - mapping.base, size)
        self.access_count += 1
        if self.trace_hooks:
            access = BusAccess("read", address, size, value)
            for hook in self.trace_hooks:
                hook(access)
        return value, mapping.wait_states

    def write(self, address, value, size):
        if address % size:
            raise BusError(f"misaligned write at {address:#010x}", address)
        mapping = self.mapping_for(address, size)
        mapping.device.write(address - mapping.base, value, size)
        self.access_count += 1
        if self.trace_hooks:
            access = BusAccess("write", address, size, value)
            for hook in self.trace_hooks:
                hook(access)
        return mapping.wait_states

    def read_word(self, address):
        return self.read(address, 4)

    def write_word(self, address, value):
        return self.write(address, value, 4)


def timed_interpreter_run(image, *, legacy: bool, traced: bool):
    """Drive the core directly (no peripheral ticking) and time the
    interpreter plus, when traced, the coverage drain.

    ``legacy`` selects the pre-PR memory system: LegacyBus routing,
    hook-based object tracing, decode cache off whenever traced (the
    removed restriction).  The fast configuration keeps the cache on
    and records into the flat ring buffer.
    """
    soc = SystemOnChip(SC88A)
    cpu = CpuCore(soc.bus, intc=soc.intc)
    if legacy:
        make_legacy(soc)
    soc.load_image(image)

    events: list[BusAccess] | None = None
    ring: BusTrace | None = None
    use_cache = not (legacy and traced)
    if traced:
        if legacy:
            events = []
            soc.bus.trace_hooks.append(events.append)
        else:
            ring = BusTrace()
            soc.bus.trace_buffer = ring
    if use_cache:
        rom = MEMORY_MAP.rom
        mapping = soc.bus.mapping_for(rom.base, 4)
        cpu.decode_cache = decode_cache_for(
            image, rom.base, rom.base + rom.size, mapping.wait_states
        )
    cpu.reset(image.entry or image.symbol("_main"), MEMORY_MAP.stack_top)

    collector = CoverageCollector(SC88A) if traced else None
    start = time.perf_counter()
    step = cpu.step
    for _ in range(MAX_STEPS):
        if cpu.halted:
            break
        step()
    if collector is not None:
        if ring is not None:
            collector.observe_trace(ring)
        else:
            for access in events:
                collector.observe_bus_access(access)
    elapsed = time.perf_counter() - start

    assert cpu.halted and cpu.regs.data[0] == PASS_MAGIC
    ips = cpu.instructions_retired / elapsed
    return ips, cpu, ring, collector


def test_untraced_dispatch_speedup():
    image = link_source(WORKLOAD_SOURCE)
    legacy_ips, _ = best_rate(
        3, lambda: timed_interpreter_run(image, legacy=True, traced=False)
    )
    fast_ips, _ = best_rate(
        3, lambda: timed_interpreter_run(image, legacy=False, traced=False)
    )
    speedup = fast_ips / legacy_ips
    RESULTS["untraced"] = {
        "legacy_ips": round(legacy_ips),
        "fast_ips": round(fast_ips),
        "speedup": round(speedup, 2),
    }
    shape(
        "memsys: untraced memory-heavy loop "
        f"{legacy_ips:,.0f} -> {fast_ips:,.0f} instr/sec "
        f"({speedup:.2f}x with page dispatch + word fast path)"
    )
    assert speedup >= 1.3, (
        f"untraced memory-system speedup {speedup:.2f}x below 1.3x target"
    )


def test_traced_coverage_run_speedup():
    image = link_source(WORKLOAD_SOURCE)
    legacy_ips, (legacy_cpu, _, legacy_cov) = best_rate(
        2, lambda: timed_interpreter_run(image, legacy=True, traced=True)
    )
    fast_ips, (fast_cpu, ring, fast_cov) = best_rate(
        2, lambda: timed_interpreter_run(image, legacy=False, traced=True)
    )
    speedup = fast_ips / legacy_ips

    # The removed restriction: the decode cache was active while the
    # bus trace was recorded...
    assert legacy_cpu.decode_cache is None
    assert fast_cpu.decode_cache is not None
    assert fast_cpu.decode_cache.hits > 0
    assert len(ring) > 0
    # ...with identical coverage bins out of the drain.
    assert (
        fast_cov.report.registers_written
        == legacy_cov.report.registers_written
    )
    assert {
        key: coverage.values
        for key, coverage in fast_cov.report.fields.items()
    } == {
        key: coverage.values
        for key, coverage in legacy_cov.report.fields.items()
    }

    RESULTS["traced_coverage"] = {
        "legacy_ips": round(legacy_ips),
        "fast_ips": round(fast_ips),
        "speedup": round(speedup, 2),
        "decode_cache_active_under_trace": True,
        "coverage_bins_identical": True,
    }
    shape(
        "memsys: traced coverage run "
        f"{legacy_ips:,.0f} -> {fast_ips:,.0f} instr/sec "
        f"({speedup:.2f}x; decode cache stays on, ring-buffer trace)"
    )
    assert speedup >= 3.0, (
        f"traced coverage-run speedup {speedup:.2f}x below 3x target"
    )


def test_divergence_verdicts_identical():
    image = link_source(
        "_main:\n"
        "    LOAD d1, 0\n"
        "    INSERT d1, d1, 3, 0, 5\n"
        "    CMPI d1, 3\n"
        "    JZ good\n"
        f"    LOAD d0, {FAIL_MAGIC:#x}\n"
        "    HALT\n"
        "good:\n"
        f"    LOAD d0, {PASS_MAGIC:#x}\n"
        "    HALT\n"
    )
    fault = NetlistFault(opcode=int(Opcode.INSERT), xor_mask=0x4)
    verdicts = []
    for use_cache in (True, False):
        reference = GoldenModel()
        subject = GateLevelSim(fault=fault)
        reference.use_decode_cache = use_cache
        subject.use_decode_cache = use_cache
        comparison = compare_traces(image, SC88A, reference, subject)
        verdicts.append(
            (comparison.identical, comparison.divergence.index)
        )
    assert verdicts[0] == verdicts[1]
    RESULTS["divergence_verdicts_identical"] = True
    shape(
        "memsys: first-divergence verdict identical with decode cache "
        f"on and off (fork at instruction #{verdicts[0][1]})"
    )


def test_session_coverage_wall_time_and_emit_json():
    env = make_nvm_environment(2)
    images = [
        env.build_image(cell, SC88A, TARGET_GOLDEN).image
        for cell in env.cells
    ]

    def legacy_run():
        collector = CoverageCollector(SC88A)
        for image in images:
            platform = GoldenModel()
            session = ExecutionSession(
                platform, SC88A, use_decode_cache=False
            )
            make_legacy(session.soc)
            events: list[BusAccess] = []
            session.soc.bus.trace_hooks.append(events.append)
            session.run(image)
            platform.last_bus_trace = events  # pre-PR: a BusAccess list
            collector.observe_platform(platform)
        return collector

    def fast_run():
        collector = CoverageCollector(SC88A)
        for image in images:
            platform = GoldenModel()
            platform.record_bus_trace = True
            platform.run(image, SC88A)
            collector.observe_platform(platform)
        return collector

    start = time.perf_counter()
    legacy_cov = legacy_run()
    legacy_s = time.perf_counter() - start
    start = time.perf_counter()
    fast_cov = fast_run()
    fast_s = time.perf_counter() - start

    assert (
        fast_cov.report.nvm_pages_programmed
        == legacy_cov.report.nvm_pages_programmed
    )
    RESULTS["coverage_run_wall_time"] = {
        "legacy_s": round(legacy_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(legacy_s / fast_s, 2),
    }
    shape(
        "memsys: session-level NVM coverage run "
        f"{legacy_s:.3f}s -> {fast_s:.3f}s "
        f"({legacy_s / fast_s:.1f}x)"
    )

    path = RESULTS.emit()
    shape(f"memsys: wrote {path.name}")
