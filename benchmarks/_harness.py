"""Shared timing and JSON-emission plumbing for the benchmark scripts.

Every ``bench_*`` module used to carry its own copy of the same three
pieces: a best-of-N wall-clock helper, a module-level results dict, and
the ``BENCH_<name>.json`` emission next to the repository root.  They
live here once; CI uploads every ``BENCH_*.json`` as a single artifact
so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

#: Benchmarks emit their JSON next to the repository root.
REPO_ROOT = Path(__file__).resolve().parents[1]


def strip_result(result):
    """The comparable engine-visible outcome of a run — the tuple the
    equivalence benches diff between engine configurations."""
    return (
        result.status,
        result.signature,
        result.result_word,
        result.instructions,
        result.cycles,
        result.uart_output,
        result.done_pin,
        result.pass_pin,
        None
        if result.trace is None
        else [(t.pc, t.opcode, t.mnemonic, t.cycles) for t in result.trace],
    )


def assert_identical(pairs, label: str = "") -> None:
    """Byte-identity gate: every ``(candidate, reference)`` result pair
    must strip to the same tuple.  Benches call this on the full
    platform matrix *before* any speed claim — a fast engine that
    diverges is a broken engine, not a fast one."""
    for index, (candidate, reference) in enumerate(pairs):
        assert strip_result(candidate) == strip_result(reference), (
            f"{label}[{index}]: engine results diverge from the reference"
        )


def engine_matrix(**configurations) -> dict:
    """The engine-flag matrix a bench compared, embedded in its JSON so
    every figure is traceable to the exact engine configurations that
    produced it (e.g. ``engine_matrix(candidate={'use_jit': True},
    reference={'use_jit': False})``)."""
    return {name: dict(flags) for name, flags in configurations.items()}


def best_of(repeats: int, fn):
    """Run *fn* *repeats* times; returns ``(best_elapsed_s, value)``
    where *value* is the result of the best (fastest) run."""
    best = None
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, value = elapsed, result
    return best, value


def best_rate(repeats: int, fn):
    """Run *fn* (which returns ``(rate, *extras)``) *repeats* times;
    returns ``(best_rate, extras)`` from the highest-rate run."""
    best = None
    extras = None
    for _ in range(repeats):
        rate, *rest = fn()
        if best is None or rate > best:
            best, extras = rate, rest
    return best, extras


class BenchResults:
    """Accumulates one benchmark module's numbers and emits the JSON.

    Behaves like a dict (the benches fill sections test by test); the
    final test of the module calls :meth:`emit`.
    """

    def __init__(self, name: str):
        self.name = name
        self.path = REPO_ROOT / f"BENCH_{name}.json"
        self.data: dict = {}

    def __setitem__(self, key: str, value) -> None:
        self.data[key] = value

    def __getitem__(self, key: str):
        return self.data[key]

    def emit(self) -> Path:
        """Write ``BENCH_<name>.json``; returns the path."""
        self.path.write_text(json.dumps(self.data, indent=2) + "\n")
        return self.path
