"""C6 — §2 future work: constrained-random Globals.inc generation.

The paper proposes generating constrained-random instances of the global
defines from a higher-level language.  We run a randomisation campaign:
every instance must assemble and pass on the golden model, and coverage
of the randomised control values must grow with campaign size.
"""

from repro.core.crg import (
    DefineConstraint,
    RandomGlobalsGenerator,
    coverage_of_campaign,
)
from repro.core.workloads import make_nvm_environment
from repro.soc.derivatives import SC88A, SC88B

from conftest import shape


def build_env(extras):
    return make_nvm_environment(
        2,
        page_overrides={
            1: extras["TEST1_TARGET_PAGE"],
            2: extras["TEST2_TARGET_PAGE"],
        },
    )


def generator(seed=2024, high=31):
    return RandomGlobalsGenerator(
        build_env,
        [
            DefineConstraint("TEST1_TARGET_PAGE", 0, high),
            DefineConstraint(
                "TEST2_TARGET_PAGE",
                0,
                high,
                predicate=lambda v: v % 2 == 1,  # odd pages only
            ),
        ],
        seed=seed,
    )


def test_c6_campaign_all_instances_pass(benchmark):
    campaign = benchmark.pedantic(
        generator().campaign, args=(8, SC88A), rounds=1, iterations=1
    )
    assert all(instance.all_pass for instance in campaign)
    constrained = [
        instance.assignment["TEST2_TARGET_PAGE"] for instance in campaign
    ]
    assert all(page % 2 == 1 for page in constrained)
    shape(
        f"C6: 8/8 random Globals instances assemble and pass; "
        f"constraint (odd pages) held on all draws: {sorted(set(constrained))}"
    )


def test_c6_coverage_grows_with_campaign(benchmark):
    def grow():
        gen = generator()
        sizes = (2, 6, 12)
        return [
            len(
                coverage_of_campaign(
                    gen.campaign(size, SC88A), "TEST1_TARGET_PAGE"
                )
            )
            for size in sizes
        ]

    counts = benchmark.pedantic(grow, rounds=1, iterations=1)
    assert counts[0] <= counts[1] <= counts[2]
    assert counts[2] > counts[0]
    shape(
        "C6: distinct page values covered at campaign sizes (2, 6, 12) = "
        f"{counts} — coverage grows with randomisation"
    )


def test_c6_wide_derivative_uses_full_range(benchmark):
    """On sc88b (64 pages) the constraint range widens and the campaign
    reaches pages a directed suite for sc88a never could."""
    campaign = benchmark.pedantic(
        generator(high=63).campaign, args=(8, SC88B), rounds=1, iterations=1
    )
    assert all(instance.all_pass for instance in campaign)
    pages = coverage_of_campaign(campaign, "TEST1_TARGET_PAGE")
    assert any(page >= 32 for page in pages)
    shape(
        f"C6: on sc88b the campaign reached high pages {sorted(p for p in pages if p >= 32)} "
        "(unreachable on sc88a)"
    )
