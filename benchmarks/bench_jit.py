"""Template JIT benchmarks (ISSUE 8).

The engine series took the single run from an if/elif interpreter to
executor tables, superblocks, analytic idle warps and lock-step
batching; the template JIT (:mod:`repro.isa.jit`) is the next integer
multiple on the workload class none of those closed forms cover:
compute-heavy code where every retired instruction does data-dependent
ALU work.  This bench records the acceptance numbers ISSUE 8 ties the
compiler to:

- wall-clock on the **compute-burn workloads** (xorshift32 + checksum
  kernels from ``core/workloads.py``) with ``use_jit=True`` vs the
  ISSUE 5 superblock engine (``use_jit=False``), asserting the >= 2x
  floor (>= 1.5x in ``--quick`` mode);
- **byte-identity before any speed claim**: retire traces, bus traces
  and cycle counts compared across **all six platforms** via the shared
  ``_harness.assert_identical`` gate;
- JIT telemetry (``jit_chains`` > 0, ``jit_exec_steps`` > 0) so a
  silently-declining compiler fails the bench even if wall-clock
  happens to survive;
- the engine-flag matrix compared, embedded in the JSON.

Emits ``BENCH_jit.json`` next to the repository root.  Also runnable as
a script: ``python benchmarks/bench_jit.py [--quick]`` — the CI
perf-smoke job uses ``--quick`` and fails the build if the floor or any
byte-identity assertion trips.
"""

from __future__ import annotations

import sys

from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import make_compute_environment
from repro.platforms import ExecutionSession, PLATFORM_CLASSES, RunStatus
from repro.soc.derivatives import SC88A

from conftest import shape
from _harness import (
    BenchResults,
    assert_identical,
    best_of,
    engine_matrix,
)

RESULTS = BenchResults("jit")

#: Full (pytest/CI bench) and quick (perf-smoke gate) configurations.
FULL = {
    "compute_loops": (2_000, 20_000),
    "repeats": 3,
    "min_speedup": 2.0,
    "mode": "full",
}
QUICK = {
    "compute_loops": (2_000,),
    "repeats": 2,
    "min_speedup": 1.5,
    "mode": "quick",
}

MATRIX = engine_matrix(
    candidate={"use_jit": True},
    reference={"use_jit": False, "note": "ISSUE 5 superblock engine"},
)


def compute_images(config):
    env = make_compute_environment(compute_loops=config["compute_loops"])
    return [
        (cell, env.build_image(cell, SC88A, TARGET_GOLDEN).image)
        for cell in sorted(env.cells)
    ]


def check_identity_across_platforms(images) -> tuple[int, int]:
    """The acceptance gate: byte-identical retire/bus traces and cycle
    counts vs ``use_jit=False`` on all six platforms, before any
    stopwatch starts.  Returns ``(platforms_compared, chains_compiled)``
    — compiles land here because later sessions share the digest-keyed
    cache and reuse the installed chains."""
    chains = 0
    for label, image in images:
        pairs = []
        for name in sorted(PLATFORM_CLASSES):
            cls = PLATFORM_CLASSES[name]
            jit_platform, ref_platform = cls(), cls()
            jit_platform.record_bus_trace = True
            ref_platform.record_bus_trace = True
            jit_session = ExecutionSession(jit_platform, SC88A)
            candidate = jit_session.run(image)
            reference = ExecutionSession(
                ref_platform, SC88A, use_jit=False
            ).run(image)
            pairs.append((candidate, reference))
            assert_identical(pairs[-1:], f"jit/{label}/{name}")
            assert list(jit_platform.last_bus_trace.raw()) == list(
                ref_platform.last_bus_trace.raw()
            ), f"jit/{label}/{name}: bus traces diverge"
            stats = jit_session.stats()
            chains += stats["jit_chains"]
            assert stats["jit_exec_steps"] > 0, (
                f"jit/{label}/{name}: compiled chains never executed"
            )
    return len(PLATFORM_CLASSES), chains


def run_compute_speedup(config) -> dict:
    """The acceptance number: compute-burn wall-clock with the template
    JIT vs the ISSUE 5 superblock engine, identity-gated first."""
    images = compute_images(config)
    platforms_compared, jit_chains_total = (
        check_identity_across_platforms(images)
    )

    per_image = {}
    total_jit = 0.0
    total_reference = 0.0
    for label, image in images:
        jit_session = ExecutionSession(
            PLATFORM_CLASSES["golden"](), SC88A
        )
        ref_session = ExecutionSession(
            PLATFORM_CLASSES["golden"](), SC88A, use_jit=False
        )
        # Warm both engines: decode cache formation and the chain
        # compile happen once, off the stopwatch (steady-state is what
        # a regression matrix re-runs).
        jit_result = jit_session.run(image)
        ref_session.run(image)
        assert jit_result.status is RunStatus.PASS, label

        jit_elapsed, jit_timed = best_of(
            config["repeats"], lambda: jit_session.run(image)
        )
        ref_elapsed, ref_timed = best_of(
            config["repeats"], lambda: ref_session.run(image)
        )
        assert_identical([(jit_timed, ref_timed)], f"jit/{label}/timed")
        timed_stats = jit_session.stats()
        assert timed_stats["jit_exec_steps"] > 0, label
        total_jit += jit_elapsed
        total_reference += ref_elapsed
        per_image[label] = {
            "jit_ms": round(jit_elapsed * 1e3, 3),
            "superblock_ms": round(ref_elapsed * 1e3, 3),
            "speedup": round(ref_elapsed / jit_elapsed, 2),
            "jit_exec_steps": timed_stats["jit_exec_steps"],
        }
    assert jit_chains_total > 0, "no chain was ever compiled"
    return {
        "per_image": per_image,
        "platforms_compared": platforms_compared,
        "jit_chains": jit_chains_total,
        "engine_matrix": MATRIX,
        "speedup": round(total_reference / total_jit, 2),
        "min_required": config["min_speedup"],
        "mode": config["mode"],
    }


# ---------------------------------------------------------------------------
# pytest entry points (full configuration)
# ---------------------------------------------------------------------------

def test_compute_speedup_and_emit_json():
    numbers = run_compute_speedup(FULL)
    RESULTS["compute"] = numbers
    shape(
        f"jit: compute-burn {numbers['speedup']:.2f}x vs the superblock "
        f"engine ({numbers['jit_chains']} chains, byte-identical on "
        f"{numbers['platforms_compared']} platforms)"
    )
    assert numbers["speedup"] >= FULL["min_speedup"], (
        f"jit speedup {numbers['speedup']:.2f}x below "
        f"{FULL['min_speedup']}x target"
    )
    path = RESULTS.emit()
    shape(f"jit: wrote {path.name}")


# ---------------------------------------------------------------------------
# script mode: the CI perf-smoke gate
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    config = QUICK if quick else FULL
    try:
        numbers = run_compute_speedup(config)
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        return 1
    RESULTS["compute"] = numbers
    path = RESULTS.emit()
    print(
        f"jit[{config['mode']}]: compute-burn {numbers['speedup']}x vs "
        f"superblock engine (floor {config['min_speedup']}x), "
        f"{numbers['jit_chains']} chains, byte-identical on "
        f"{numbers['platforms_compared']} platforms -> {path.name}"
    )
    if numbers["speedup"] < config["min_speedup"]:
        print(
            f"FAIL: jit speedup {numbers['speedup']}x below the "
            f"{config['min_speedup']}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
