"""Regression-as-a-service benchmarks (ISSUE 9).

The serving daemon exists to amortise cold-start: a long-lived
:class:`~repro.service.daemon.RegressionService` holds warm
``ExecutionSession`` pools, the digest-keyed decode registry and a
fingerprint-validated environment cache (assembled/linked build
artifacts) across requests.  This bench records the two acceptance
numbers ISSUE 9 ties the service to:

- **warm-pool speedup**: the same scenario pack submitted to a warm
  long-lived service vs a cold per-request service (decode registry
  cleared, fresh pools, fresh environment cache — what every one-shot
  CLI invocation pays).  Floor: warm must be >= 2x cold, the committed
  ``bench_trend`` gate;
- **chaos accounting**: a live service takes a stream of submissions
  with faults armed at the service-layer sites (admission, pool lease,
  journal write) plus execution/cache chaos; every submission is either
  refused explicitly or terminates with a ``done``/``error`` event,
  the accounting balances (accepted == completed + failed) and the
  journal holds no pending jobs afterwards.

Emits ``BENCH_serving.json`` next to the repository root.  Also
runnable as a script: ``python benchmarks/bench_serving.py [--quick]``
— the CI perf-smoke job uses ``--quick`` and fails the build if the
warm-pool gate or any accounting assertion trips.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
import time
from pathlib import Path

from repro.core.faults import (
    ACTION_CORRUPT,
    ACTION_RAISE,
    FaultPlan,
    FaultSpec,
    SITE_CACHE_READ,
    SITE_JOURNAL_WRITE,
    SITE_POOL_LEASE,
    SITE_SERVICE_ACCEPT,
    SITE_SESSION_RUN,
)
from repro.core.scheduler import ResultCache
from repro.core.system_env import make_default_system
from repro.core.workspace import write_system_environment
from repro.isa.decodecache import reset_registry
from repro.service import (
    JobJournal,
    RegressionService,
    ServiceError,
    ServiceUnavailable,
)

from conftest import shape
from _harness import engine_matrix, BenchResults

RESULTS = BenchResults("serving")
RESULTS["engine_matrix"] = engine_matrix(
    candidate={
        "serving": "warm daemon",
        "session_pool": True,
        "env_cache": True,
        "decode_registry": "warm",
    },
    reference={
        "serving": "cold per-request",
        "session_pool": False,
        "env_cache": False,
        "decode_registry": "cleared",
    },
)

#: Full (pytest/CI bench) and quick (perf-smoke gate) configurations.
FULL = {
    "nvm_tests": 2,
    "uart_tests": 1,
    "repeats": 3,
    "min_speedup": 2.0,
    "mode": "full",
}
QUICK = {
    "nvm_tests": 1,
    "uart_tests": 0,
    "repeats": 2,
    "min_speedup": 2.0,
    "mode": "quick",
}


def make_workspace(config, root: Path) -> Path:
    system = make_default_system(
        nvm_tests=config["nvm_tests"], uart_tests=config["uart_tests"]
    )
    return write_system_environment(system, root / "ws")


def bench_pack(config) -> dict:
    return {
        "schema": 1,
        "name": "bench-serving",
        "modules": ["NVM"],
        "targets": ["golden", "rtl"],
        "executor": "serial",
    }


async def timed_submission(service: RegressionService, pack: dict) -> float:
    """One accepted submission driven to its terminal event."""
    start = time.perf_counter()
    terminal = None
    async for event in service.submit(pack):
        terminal = event["event"]
    elapsed = time.perf_counter() - start
    assert terminal == "done", f"submission ended with {terminal!r}"
    return elapsed


def run_warm_pool(config) -> dict:
    """Warm long-lived service vs cold per-request service on the same
    scenario pack."""
    with tempfile.TemporaryDirectory(prefix="bench_serving_") as tmp:
        workspace = make_workspace(config, Path(tmp))
        pack = bench_pack(config)

        async def cold_samples() -> list[float]:
            samples = []
            for _ in range(config["repeats"]):
                # What a one-shot CLI run pays: no warm sessions, no
                # cached environments, no predecoded images.
                reset_registry()
                service = RegressionService(workspace)
                samples.append(await timed_submission(service, pack))
                await service.drain()
            return samples

        async def warm_samples() -> list[float]:
            service = RegressionService(workspace)
            await timed_submission(service, pack)  # warm everything
            samples = [
                await timed_submission(service, pack)
                for _ in range(config["repeats"])
            ]
            stats = service.stats()
            await service.drain()
            assert stats["pool"]["warm_hits"] > 0
            return samples

        cold = min(asyncio.run(cold_samples()))
        warm = min(asyncio.run(warm_samples()))

    return {
        "cold_ms": round(cold * 1e3, 3),
        "warm_ms": round(warm * 1e3, 3),
        "speedup": round(cold / warm, 3),
        "min_required": config["min_speedup"],
        "mode": config["mode"],
    }


def chaos_plan() -> FaultPlan:
    """Service-layer chaos: the first journal write fails (the job is
    refused, not lost), one admission fault, one pool-lease failure
    (retried by the supervision ladder), two engine crashes and one
    corrupt cache read."""
    return FaultPlan(seed=11, specs=[
        FaultSpec(site=SITE_JOURNAL_WRITE, action=ACTION_RAISE, times=1),
        FaultSpec(site=SITE_SERVICE_ACCEPT, action=ACTION_RAISE,
                  after=1, times=1),
        FaultSpec(site=SITE_POOL_LEASE, action=ACTION_RAISE, times=1),
        FaultSpec(site=SITE_SESSION_RUN, action=ACTION_RAISE, times=2),
        FaultSpec(site=SITE_CACHE_READ, action=ACTION_CORRUPT, times=1),
    ])


def run_chaos(config) -> dict:
    """A live service under service-layer chaos: every submission is
    refused explicitly or terminates, and the books balance."""
    submissions = 6
    with tempfile.TemporaryDirectory(prefix="bench_serving_") as tmp:
        workspace = make_workspace(config, Path(tmp))
        pack = bench_pack(config)

        async def drive():
            service = RegressionService(
                workspace,
                journal=JobJournal(Path(tmp) / "journal"),
                cache=ResultCache(Path(tmp) / "cache"),
                fault_plan=chaos_plan(),
            )
            refused = 0
            terminals = []
            for _ in range(submissions):
                try:
                    terminal = None
                    async for event in service.submit(pack):
                        terminal = event["event"]
                    terminals.append(terminal)
                except (ServiceUnavailable, ServiceError):
                    refused += 1
            stats = service.stats()
            await service.drain()
            return refused, terminals, stats

        refused, terminals, stats = asyncio.run(drive())

    # Nothing hangs, nothing vanishes: each submission was refused
    # explicitly or reached a terminal event.
    assert refused + len(terminals) == submissions
    assert all(terminal in ("done", "error") for terminal in terminals)
    jobs = stats["jobs"]
    assert jobs["accepted"] == jobs["completed"] + jobs["failed"]
    assert stats["journal"]["pending"] == 0
    assert refused >= 2  # the journal-write and admission faults

    return {
        "submissions": submissions,
        "refused": refused,
        "accepted": jobs["accepted"],
        "completed": jobs["completed"],
        "failed": jobs["failed"],
        "pool_recycled": stats["pool"]["recycled"],
        "cache_corrupt": stats["cache"]["corrupt"],
        "journal_pending": stats["journal"]["pending"],
        "mode": config["mode"],
    }


# ---------------------------------------------------------------------------
# pytest entry points (full configuration)
# ---------------------------------------------------------------------------

def test_warm_pool_speedup_gate():
    numbers = run_warm_pool(FULL)
    RESULTS["warm_pool"] = numbers
    shape(
        f"serving: warm daemon at {numbers['speedup']:.2f}x of cold "
        f"per-request ({numbers['warm_ms']}ms vs {numbers['cold_ms']}ms, "
        f"floor {FULL['min_speedup']}x)"
    )
    assert numbers["speedup"] >= FULL["min_speedup"], (
        f"warm-pool gate: {numbers['speedup']:.2f}x below "
        f"{FULL['min_speedup']}x"
    )


def test_chaos_accounting_and_emit_json():
    numbers = run_chaos(FULL)
    RESULTS["chaos"] = numbers
    shape(
        f"serving: {numbers['submissions']} chaos submissions -> "
        f"{numbers['refused']} refused explicitly, "
        f"{numbers['completed']} completed, {numbers['failed']} failed, "
        f"0 pending"
    )
    path = RESULTS.emit()
    shape(f"serving: wrote {path.name}")


# ---------------------------------------------------------------------------
# script mode: the CI perf-smoke gate
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    config = QUICK if quick else FULL
    try:
        warm_pool = run_warm_pool(config)
        chaos = run_chaos(config)
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        return 1
    RESULTS["warm_pool"] = warm_pool
    RESULTS["chaos"] = chaos
    path = RESULTS.emit()
    print(
        f"serving[{config['mode']}]: warm daemon at "
        f"{warm_pool['speedup']}x of cold per-request (floor "
        f"{config['min_speedup']}x), chaos: {chaos['refused']} refused / "
        f"{chaos['completed']} completed / {chaos['failed']} failed "
        f"of {chaos['submissions']} -> {path.name}"
    )
    if warm_pool["speedup"] < config["min_speedup"]:
        print(
            f"FAIL: warm daemon {warm_pool['speedup']}x below the "
            f"{config['min_speedup']}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
