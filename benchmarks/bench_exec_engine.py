"""Execution-engine benchmarks: predecode throughput and matrix wall-time.

Records the two numbers ISSUE 1 ties the engine to:

- instructions/sec of the interpreter with the predecode cache on vs.
  off (the ISA-layer win);
- wall-time of the full six-platform system regression, serial seed
  baseline (cold builds, fresh platform per run, per-retire decode) vs.
  the engine (build cache + execution sessions + predecode + scheduler),
  asserting the >= 3x target;
- a warm-cache re-regression of an unchanged workspace, asserting it
  executes **zero** platform runs while reproducing the verdict matrix.
"""

from __future__ import annotations

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.regression import RegressionReport, detect_divergences
from repro.core.scheduler import RegressionScheduler, ResultCache
from repro.core.system_env import make_default_system
from repro.core.targets import all_targets
from repro.platforms import ExecutionSession, GoldenModel
from repro.soc.derivatives import SC88A
from repro.soc.device import PASS_MAGIC

from conftest import shape
from _harness import engine_matrix, BenchResults, best_of

MEMORY_MAP = SC88A.memory_map()

RESULTS = BenchResults("exec_engine")
RESULTS["engine_matrix"] = engine_matrix(
    candidate={"use_decode_cache": True},
    reference={"use_decode_cache": False},
)

LOOP_ITERATIONS = 30_000

HOT_LOOP_SOURCE = f"""\
_main:
    LOAD d1, {LOOP_ITERATIONS}
loop:
    ADDI d2, d2, 1
    XOR d3, d3, d2
    DJNZ d1, loop
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""


def link_source(source: str):
    obj = Assembler().assemble_source(source, "bench.asm")
    return Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])


def run_serial_baseline(environments, derivative) -> RegressionReport:
    """The seed's behaviour: cold build and fresh platform per matrix
    entry, per-retire decode in the interpreter."""
    report = RegressionReport(derivative=derivative.name)
    for env in environments.values():
        for cell_name in env.cells:
            per_target = {}
            for tgt in all_targets():
                artifacts = env.build_image(
                    cell_name, derivative, tgt, use_cache=False
                )
                platform = tgt.make_platform()
                platform.use_decode_cache = False
                result = platform.run(artifacts.image, derivative)
                per_target[tgt.name] = result
                report.results[(env.name, cell_name, tgt.name)] = result
            detect_divergences(env.name, cell_name, per_target, report)
    return report


def statuses(report: RegressionReport):
    return {key: result.status for key, result in report.results.items()}


def test_predecode_instruction_throughput():
    image = link_source(HOT_LOOP_SOURCE)

    def run(use_cache: bool):
        session = ExecutionSession(
            GoldenModel(), SC88A, use_decode_cache=use_cache
        )
        return session.run(image)

    legacy_time, legacy = best_of(3, lambda: run(False))
    cached_time, cached = best_of(3, lambda: run(True))
    assert cached.instructions == legacy.instructions
    assert cached.cycles == legacy.cycles
    legacy_ips = legacy.instructions / legacy_time
    cached_ips = cached.instructions / cached_time
    RESULTS["predecode_throughput"] = {
        "legacy_ips": round(legacy_ips),
        "cached_ips": round(cached_ips),
        "speedup": round(cached_ips / legacy_ips, 2),
    }
    shape(
        "exec engine: interpreter throughput "
        f"{legacy_ips:,.0f} -> {cached_ips:,.0f} instr/sec "
        f"({cached_ips / legacy_ips:.2f}x with predecode cache)"
    )
    # The hot loop re-retires the same three ROM words; decoding them
    # once must beat decoding them every retire.
    assert cached_ips > legacy_ips


def test_system_regression_matrix_speedup():
    baseline_system = make_default_system(nvm_tests=2, uart_tests=1)
    baseline_time, baseline_report = best_of(
        1, lambda: run_serial_baseline(baseline_system.environments, SC88A)
    )

    engine_system = make_default_system(nvm_tests=2, uart_tests=1)
    scheduler = RegressionScheduler()
    engine_time, engine_report = best_of(
        1, lambda: scheduler.run_system(engine_system.environments, SC88A)
    )

    assert statuses(engine_report) == statuses(baseline_report)
    assert engine_report.clean
    speedup = baseline_time / engine_time
    RESULTS["matrix"] = {
        "runs": engine_report.total_runs,
        "baseline_s": round(baseline_time, 3),
        "engine_s": round(engine_time, 3),
        "speedup": round(speedup, 2),
    }
    shape(
        "exec engine: full six-platform matrix "
        f"({engine_report.total_runs} runs) "
        f"{baseline_time:.2f}s serial baseline -> {engine_time:.2f}s "
        f"engine ({speedup:.1f}x)"
    )
    assert speedup >= 3.0, (
        f"engine speedup {speedup:.2f}x below the 3x target "
        f"(baseline {baseline_time:.2f}s, engine {engine_time:.2f}s)"
    )


def test_warm_cache_reregression_executes_nothing(tmp_path):
    system = make_default_system(nvm_tests=2, uart_tests=1)
    cache = ResultCache(tmp_path / "verdicts")
    scheduler = RegressionScheduler(cache=cache)

    cold = scheduler.run_system(system.environments, SC88A)
    assert cold.executed_runs == cold.total_runs

    warm_time, warm = best_of(
        1, lambda: scheduler.run_system(system.environments, SC88A)
    )
    assert warm.executed_runs == 0
    assert warm.cached_runs == warm.total_runs
    assert statuses(warm) == statuses(cold)
    assert warm.divergences == cold.divergences == []
    RESULTS["warm_reregression"] = {
        "total_runs": warm.total_runs,
        "executed_runs": warm.executed_runs,
        "warm_s": round(warm_time, 3),
    }
    shape(
        "exec engine: warm-cache re-regression of an unchanged workspace "
        f"executed 0 of {warm.total_runs} runs in {warm_time:.2f}s"
    )

    path = RESULTS.emit()
    shape(f"exec engine: wrote {path.name}")
