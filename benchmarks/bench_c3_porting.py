"""C3 — §5 headline claim: rapid porting to new derivatives.

Ports the NVM suite from sc88a to each other derivative, ADVM vs the
hardwired baseline, sweeping the suite size N.  The paper's shape:

- ADVM cost: O(1) files (abstraction layer only), constant lines in N;
- baseline cost: O(N) files and lines;
- so the saving factor grows linearly with suite size, and the ported
  ADVM suite passes with zero test edits.
"""

import pytest

from repro.core.porting import compare_nvm_port
from repro.soc.derivatives import SC88A, SC88B, SC88C, SC88D

from conftest import shape


@pytest.mark.parametrize(
    "new", [SC88B, SC88C, SC88D], ids=lambda d: f"to_{d.name}"
)
def test_c3_port_to_each_derivative(benchmark, new):
    comparison = benchmark.pedantic(
        compare_nvm_port, args=(4, [SC88A], new), rounds=1, iterations=1
    )
    assert comparison.advm.all_pass
    assert comparison.baseline.all_pass
    advm_files = comparison.advm.effort.files_touched
    baseline_files = comparison.baseline.effort.files_touched
    assert advm_files <= 2  # Globals.inc (+ Base_Functions for sc88d)
    assert baseline_files == 4
    shape(
        f"C3 -> {new.name}: ADVM touches {advm_files} abstraction files, "
        f"baseline touches {baseline_files}/{baseline_files} tests; "
        f"factors = {comparison.factors}"
    )


def test_c3_saving_scales_with_suite_size(benchmark):
    """The crossover sweep: ADVM's one-block edit is constant; the
    baseline's per-test edits grow linearly."""

    def sweep():
        rows = []
        for n in (2, 4, 8, 12):
            comparison = compare_nvm_port(n, [SC88A], SC88B)
            rows.append(
                (
                    n,
                    comparison.advm.effort.lines_changed,
                    comparison.baseline.effort.lines_changed,
                    comparison.factors["files_factor"],
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    advm_lines = [row[1] for row in rows]
    baseline_lines = [row[2] for row in rows]
    files_factors = [row[3] for row in rows]
    # ADVM: constant lines regardless of N.
    assert len(set(advm_lines)) == 1
    # Baseline: strictly growing with N.
    assert baseline_lines == sorted(baseline_lines)
    assert baseline_lines[-1] > baseline_lines[0]
    # Files factor == N (1 abstraction file vs N test files).
    assert files_factors == [2.0, 4.0, 8.0, 12.0]
    for n, advm, baseline, factor in rows:
        shape(
            f"C3 sweep N={n:2d}: ADVM {advm} lines / 1 file; baseline "
            f"{baseline} lines / {n} files; files factor {factor:.0f}x"
        )
    # Lines crossover: report where the baseline overtakes ADVM.
    crossover = next(
        (n for n, advm, baseline, _ in rows if baseline >= advm), None
    )
    shape(
        "C3: baseline line-cost overtakes ADVM's constant block at "
        f"N≈{crossover} tests (paper: 'easily recovered on first reuse')"
    )
