"""F5 — Figure 5: the system directory structure.

Writes the full ADVM_System_Verification_Environment tree (global
libraries + one Figure 3 tree per module environment), validates it and
builds a test straight off the disk.
"""

from repro.core.targets import TARGET_GOLDEN
from repro.core.workspace import (
    DiskBuilder,
    validate_system_tree,
    write_system_environment,
)
from repro.soc.derivatives import SC88A, SC88B

from conftest import shape


def test_fig5_tree_generation(benchmark, tmp_path, default_system):
    counter = {"n": 0}

    def write_once():
        counter["n"] += 1
        return write_system_environment(
            default_system, tmp_path / str(counter["n"])
        )

    system_dir = benchmark(write_once)
    assert validate_system_tree(system_dir) == []
    module_dirs = [
        p.name
        for p in system_dir.iterdir()
        if p.is_dir() and p.name != "Global_Libraries"
    ]
    shape(
        "F5: system tree = Global_Libraries + "
        f"{len(module_dirs)} module environments ({sorted(module_dirs)})"
    )


def test_fig5_disk_build_runs(tmp_path, default_system, benchmark):
    system_dir = write_system_environment(default_system, tmp_path)
    builder = DiskBuilder(system_dir)
    result = benchmark(
        builder.run, "NVM", "TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN
    )
    assert result.passed
    shape("F5: test built and run straight from the on-disk tree: pass")


def test_fig5_disk_build_other_derivative(tmp_path, default_system, benchmark):
    system_dir = write_system_environment(default_system, tmp_path)
    builder = DiskBuilder(system_dir)
    result = benchmark.pedantic(
        builder.run,
        args=("NVM", "TEST_NVM_PAGE_001", SC88B, TARGET_GOLDEN),
        rounds=1,
        iterations=1,
    )
    assert result.passed
    shape("F5: same tree serves other derivatives via predefines: pass")
