"""Superblock benchmarks: straight-line fusion + idle fast-forward.

Records the numbers ISSUE 4 ties the execution core to, against the
ISSUE 3 engine (per-instruction executor-table dispatch under
event-horizon scheduling, selected via ``use_superblocks=False``):

- instructions/sec on the **delay-heavy** workloads — one-shot timer
  delays (``Base_Timer_Delay``: calibrated pure spin between status
  polls) and raw busy-wait burns (``Base_Spin``) — where the idle
  fast-forward warps the spin iterations the program only counts,
  asserting the >= 2x target (>= 1.5x in ``--quick`` mode);
- byte-identical architectural outcomes — signature, cycles, retire
  totals, IRQ-delivery timing — against **both** reference baselines:
  ``use_exec_table=False`` (the pre-dispatch ``if/elif`` chain) and
  ``use_block_run=False`` (the per-step/per-tick loop), plus a traced
  golden run proving the retire trace itself is unchanged (since
  ISSUE 5 the fast path stays on under observation and synthesizes
  the warped trace records; ``bench_trace_fastpath.py`` measures that
  win);
- the chaining win on a branchy ALU loop with no idle spins (fusion +
  block-to-block chaining only);
- the mechanism observables: warps performed, and that the reference
  configurations perform none.

Runs on the bondout platform — full register/memory visibility without
the always-on instruction trace, i.e. the configuration where the
hoisted engine actually operates.

Emits ``BENCH_superblock.json`` next to the repository root.  Also
runnable as a script: ``python benchmarks/bench_superblock.py
[--quick]`` — the CI perf-smoke job uses ``--quick`` and fails the
build if the speedup floor or any equivalence assertion trips.
"""

from __future__ import annotations

import sys
import time

from repro.core.workloads import (
    make_delay_environment,
    make_timer_environment,
)
from repro.core.targets import TARGET_BONDOUT, TARGET_GOLDEN
from repro.platforms import Bondout, ExecutionSession, GoldenModel
from repro.soc.derivatives import SC88A
from repro.soc.device import PASS_MAGIC

from conftest import shape
from _harness import engine_matrix, BenchResults, best_rate, strip_result as strip

MEMORY_MAP = SC88A.memory_map()

RESULTS = BenchResults("superblock")
RESULTS["engine_matrix"] = engine_matrix(
    candidate={"use_superblocks": True, "use_fast_forward": True},
    reference={"use_superblocks": False},
    baseline={"use_block_run": False, "note": "per-step/per-tick loop"},
)

#: Full (pytest/CI bench) and quick (perf-smoke gate) configurations.
FULL = {
    "delay_ticks": (60_000, 120_000),
    "spin_loops": (150_000,),
    "repeats": 3,
    "min_speedup": 2.0,
    "mode": "full",
}
QUICK = {
    "delay_ticks": (15_000,),
    "spin_loops": (40_000,),
    "repeats": 2,
    "min_speedup": 1.5,
    "mode": "quick",
}

LOOP_ITERATIONS = 40_000

#: Branchy ALU loop with no idle spins: measures fusion + chaining
#: alone (every superblock here ends in a memory micro-op or branch).
CHAIN_SOURCE = f"""\
_main:
    LOAD a1, {MEMORY_MAP.ram.base:#x}
    LOAD d1, {LOOP_ITERATIONS}
loop:
    ADDI d2, d2, 3
    XOR d3, d3, d2
    SHLI d4, d2, 5
    ST.W [a1], d4
    LD.W d5, [a1]
    SUB d6, d5, d3
    CMPI d6, 0
    JZ skip
    ANDI d6, d6, 0xFF
skip:
    DJNZ d1, loop
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""


def make_session(platform_cls=Bondout, *, engine: str) -> ExecutionSession:
    """``new`` = superblocks + fast-forward; ``pr3`` = the ISSUE 3
    per-instruction hoisted loop; ``exec_off`` = the pre-dispatch
    ``if/elif`` chain; ``step`` = the per-step/per-tick session loop."""
    if engine == "new":
        return ExecutionSession(platform_cls(), SC88A)
    if engine == "pr3":
        return ExecutionSession(platform_cls(), SC88A, use_superblocks=False)
    if engine == "exec_off":
        session = ExecutionSession(
            platform_cls(), SC88A, use_superblocks=False
        )
        session.cpu.use_exec_table = False
        return session
    if engine == "step":
        return ExecutionSession(platform_cls(), SC88A, use_block_run=False)
    raise ValueError(engine)


def timed_run(image, *, engine: str):
    session = make_session(engine=engine)
    start = time.perf_counter()
    result = session.run(image)
    elapsed = time.perf_counter() - start
    assert result.signature == PASS_MAGIC, engine
    return result.instructions / elapsed, result, session.cpu.ff_warps


def delay_images(config):
    env = make_delay_environment(
        delay_ticks=config["delay_ticks"], spin_loops=config["spin_loops"]
    )
    return [
        (cell, env.build_image(cell, SC88A, TARGET_BONDOUT).image)
        for cell in env.cells
    ]


def run_delay_speedup(config) -> dict:
    """The acceptance number: new engine vs the ISSUE 3 engine on the
    delay-heavy workloads, byte-identical against both references."""
    repeats = config["repeats"]
    per_cell = {}
    total_new = 0.0
    total_pr3 = 0.0
    warps_total = 0
    for cell, image in delay_images(config):
        new_ips, (new_result, new_warps) = best_rate(
            repeats, lambda: timed_run(image, engine="new")
        )
        pr3_ips, (pr3_result, pr3_warps) = best_rate(
            repeats, lambda: timed_run(image, engine="pr3")
        )
        _, exec_off_result, _ = timed_run(image, engine="exec_off")
        _, step_result, step_warps = timed_run(image, engine="step")
        # Byte-identical architecture against both baselines before any
        # speed claim (signature, cycles, retires, pins, UART).
        assert strip(new_result) == strip(pr3_result), cell
        assert strip(new_result) == strip(exec_off_result), cell
        assert strip(new_result) == strip(step_result), cell
        assert new_warps > 0, f"{cell}: fast-forward never fired"
        assert pr3_warps == 0 and step_warps == 0
        instructions = new_result.instructions
        total_new += instructions / new_ips
        total_pr3 += instructions / pr3_ips
        warps_total += new_warps
        per_cell[cell] = {
            "instructions": instructions,
            "pr3_ips": round(pr3_ips),
            "new_ips": round(new_ips),
            "speedup": round(new_ips / pr3_ips, 2),
            "warps": new_warps,
        }
    speedup = total_pr3 / total_new
    return {
        "per_cell": per_cell,
        "speedup": round(speedup, 2),
        "min_required": config["min_speedup"],
        "warps": warps_total,
        "mode": config["mode"],
    }


def run_chain_speedup(config) -> dict:
    """Fusion + chaining alone (no idle spins in the loop)."""
    from repro.assembler.assembler import Assembler
    from repro.assembler.linker import Linker

    obj = Assembler().assemble_source(CHAIN_SOURCE, "bench.asm")
    image = Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])
    repeats = config["repeats"]
    new_ips, (new_result, new_warps) = best_rate(
        repeats, lambda: timed_run(image, engine="new")
    )
    pr3_ips, (pr3_result, _) = best_rate(
        repeats, lambda: timed_run(image, engine="pr3")
    )
    assert strip(new_result) == strip(pr3_result)
    assert new_warps == 0  # no idle spins here: pure chaining
    return {
        "pr3_ips": round(pr3_ips),
        "new_ips": round(new_ips),
        "speedup": round(new_ips / pr3_ips, 2),
    }


def run_irq_timing_and_trace_identity() -> dict:
    """IRQ-delivery timing on the interrupt-heavy timer suite, and the
    retire trace on a traced golden run, must be byte-identical."""
    env = make_timer_environment()
    cells_checked = 0
    for cell in env.cells:
        image = env.build_image(cell, SC88A, TARGET_BONDOUT).image
        outcomes = [
            strip(timed_run(image, engine=engine)[1])
            for engine in ("new", "pr3", "exec_off", "step")
        ]
        assert all(outcome == outcomes[0] for outcome in outcomes), cell
        cells_checked += 1
    # Traced golden runs: since ISSUE 5 the fast path stays on under
    # observation — warps fire and synthesize their trace records, and
    # the retire stream stays byte-identical to the reference.
    golden_env = make_delay_environment(
        delay_ticks=(2_000,), spin_loops=(5_000,)
    )
    traced_cells = 0
    for cell in golden_env.cells:
        image = golden_env.build_image(cell, SC88A, TARGET_GOLDEN).image
        fast_session = ExecutionSession(GoldenModel(), SC88A)
        fast = fast_session.run(image)
        reference = ExecutionSession(
            GoldenModel(), SC88A, use_block_run=False
        ).run(image)
        assert strip(fast) == strip(reference), cell
        assert fast.trace is not None
        assert fast_session.cpu.ff_warps > 0  # observed warp (ISSUE 5)
        traced_cells += 1
    return {"irq_cells": cells_checked, "traced_cells": traced_cells}


# ---------------------------------------------------------------------------
# pytest entry points (full configuration)
# ---------------------------------------------------------------------------

def test_delay_fastforward_speedup():
    numbers = run_delay_speedup(FULL)
    RESULTS["delay_fast_forward"] = numbers
    shape(
        "superblock: delay-heavy workloads "
        f"{numbers['speedup']:.2f}x vs the ISSUE 3 engine "
        f"({numbers['warps']} idle warps), byte-identical vs "
        "exec-table-off and per-step references"
    )
    assert numbers["speedup"] >= FULL["min_speedup"], (
        f"superblock speedup {numbers['speedup']:.2f}x below "
        f"{FULL['min_speedup']}x target"
    )


def test_chaining_on_branchy_loop():
    numbers = run_chain_speedup(FULL)
    RESULTS["chaining"] = numbers
    shape(
        "superblock: branchy ALU loop (no idle spins) "
        f"{numbers['pr3_ips']:,} -> {numbers['new_ips']:,} instr/sec "
        f"({numbers['speedup']:.2f}x from fusion + chaining)"
    )
    assert numbers["speedup"] >= 1.0


def test_irq_timing_and_trace_identity_and_emit_json():
    numbers = run_irq_timing_and_trace_identity()
    RESULTS["equivalence"] = numbers
    shape(
        f"superblock: {numbers['irq_cells']} interrupt-heavy runs and "
        f"{numbers['traced_cells']} traced runs byte-identical across "
        "all four engine configurations"
    )
    path = RESULTS.emit()
    shape(f"superblock: wrote {path.name}")


# ---------------------------------------------------------------------------
# script mode: the CI perf-smoke gate
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    config = QUICK if quick else FULL
    try:
        delay = run_delay_speedup(config)
        chain = run_chain_speedup(config)
        equivalence = run_irq_timing_and_trace_identity()
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        return 1
    RESULTS["delay_fast_forward"] = delay
    RESULTS["chaining"] = chain
    RESULTS["equivalence"] = equivalence
    path = RESULTS.emit()
    print(
        f"superblock[{config['mode']}]: delay speedup {delay['speedup']}x "
        f"(floor {config['min_speedup']}x), chaining {chain['speedup']}x, "
        f"{equivalence['irq_cells']} IRQ + {equivalence['traced_cells']} "
        f"traced cells byte-identical -> {path.name}"
    )
    if delay["speedup"] < config["min_speedup"]:
        print(
            f"FAIL: speedup {delay['speedup']}x below the "
            f"{config['min_speedup']}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
