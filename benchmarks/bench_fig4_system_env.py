"""F4 — Figure 4: the complete test environment.

Composes module environments over one shared global layer and verifies
the isolation rule: environments share code only via the global layer.
"""

from repro.core.environment import TestCell
from repro.core.system_env import SystemEnvironment, make_default_system
from repro.core.workloads import make_nvm_environment, make_uart_environment
from repro.soc.derivatives import SC88A

from conftest import shape


def test_fig4_composition(benchmark):
    system = benchmark(make_default_system, nvm_tests=2, uart_tests=2)
    assert len(system.environments) == 6
    layers = {id(env.global_layer) for env in system.environments.values()}
    assert len(layers) == 1
    shape(
        f"F4: {len(system.environments)} module environments over one "
        f"shared global layer ({system.total_tests} tests total)"
    )


def test_fig4_isolation_clean(default_system, benchmark):
    violations = benchmark(default_system.check_isolation)
    assert violations == []
    shape("F4: isolation check clean — no cross-environment references")


def test_fig4_isolation_detects_leak(benchmark):
    system = SystemEnvironment()
    system.add_environment(make_nvm_environment(1))
    uart = make_uart_environment(1)
    uart.add_test(
        TestCell(
            name="TEST_LEAK",
            source=(
                ".INCLUDE Globals.inc\n_main:\n"
                "    LOAD d4, TEST1_TARGET_PAGE\n"
                "    JMP Base_Report_Pass\n"
            ),
        )
    )
    system.add_environment(uart)
    violations = benchmark.pedantic(
        system.check_isolation, rounds=1, iterations=1
    )
    assert len(violations) == 1
    assert violations[0].referenced_env == "NVM"
    shape(
        "F4: injected cross-environment reference detected: "
        + str(violations[0])
    )


def test_fig4_system_regression_passes(default_system, benchmark):
    results = benchmark.pedantic(
        default_system.run_all, args=(SC88A,), rounds=1, iterations=1
    )
    total = sum(len(cells) for cells in results.values())
    passed = sum(
        1
        for cells in results.values()
        for result in cells.values()
        if result.passed
    )
    assert passed == total
    shape(f"F4: system regression {passed}/{total} tests pass on sc88a")
