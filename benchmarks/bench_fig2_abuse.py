"""F2 — Figure 2: abuse of the module test environment.

Injects direct global-layer usage into k of N tests; the checker must
flag exactly those k tests.  Then demonstrates the paper's warning: when
the global layer changes, the abusive tests break while the clean ones
survive untouched.
"""

from repro.core.environment import TestCell
from repro.core.targets import TARGET_GOLDEN
from repro.core.violations import check_environment
from repro.core.workloads import make_nvm_environment
from repro.soc.derivatives import SC88A, SC88D

from conftest import shape

ABUSIVE_SOURCE = """\
.INCLUDE Globals.inc
_main:
    LOAD a4, UART_BAUD_ADDR
    LOAD d4, 0x77
    LOAD CallAddr, ES_Init_Register    ;; direct firmware call (abuse)
    CALL CallAddr
    JMP Base_Report_Pass
"""


def abusive_environment(clean: int, abusive: int):
    env = make_nvm_environment(clean)
    for index in range(abusive):
        env.add_test(
            TestCell(
                name=f"TEST_ABUSE_{index:03d}",
                source=ABUSIVE_SOURCE,
            )
        )
    return env


def test_fig2_checker_flags_exactly_the_abusers(benchmark):
    clean, abusive = 4, 3
    env = abusive_environment(clean, abusive)
    violations = benchmark(check_environment, env, SC88A, TARGET_GOLDEN)
    flagged = {v.test_name for v in violations}
    assert flagged == {f"TEST_ABUSE_{i:03d}" for i in range(abusive)}
    shape(
        f"F2: checker flagged {len(flagged)}/{clean + abusive} tests "
        f"(expected exactly the {abusive} abusive ones)"
    )


def test_fig2_abuse_breaks_on_global_change(benchmark):
    """The consequence the paper warns about: the sc88d firmware rewrite
    breaks every abusive test (build failure) while all clean tests pass
    unmodified."""
    env = abusive_environment(clean=2, abusive=1)

    def port_attempt():
        clean_ok = 0
        abusive_broken = 0
        for name in env.cells:
            try:
                result = env.run_test(name, SC88D)
                if result.passed:
                    clean_ok += 1
            except Exception:
                abusive_broken += 1
        return clean_ok, abusive_broken

    clean_ok, abusive_broken = benchmark.pedantic(
        port_attempt, rounds=1, iterations=1
    )
    assert clean_ok == 2
    assert abusive_broken == 1
    shape(
        "F2: after the firmware rewrite, 2/2 clean tests pass, "
        "1/1 abusive test needs re-factoring"
    )
