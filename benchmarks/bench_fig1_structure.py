"""F1 — Figure 1: the three-layer module test environment.

Regenerates the module environment structure (test layer + abstraction
layer + global layer), verifies the layering is real (tests build only
through the abstraction layer), and measures the cost of constructing
and building within it.
"""

from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import make_nvm_environment
from repro.soc.derivatives import SC88A

from conftest import shape


def test_fig1_layering_structure(benchmark):
    env = benchmark(make_nvm_environment, 4)
    # Test layer: N cells.
    assert len(env.cells) == 4
    # Abstraction layer: exactly the two generated files.
    files = env.abstraction_files()
    assert set(files) == {"Globals.inc", "Base_Functions.asm"}
    # Global layer: present but not owned by the module environment.
    library_files = env.global_layer.library_files()
    assert "Trap_Handlers.asm" in library_files
    shape(
        f"F1: module env = {len(env.cells)} tests over "
        f"{len(files)} abstraction files + "
        f"{len(library_files)} global libraries"
    )


def test_fig1_build_through_abstraction_layer(benchmark):
    env = make_nvm_environment(1)
    artifacts = benchmark(
        env.build_image, "TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN
    )
    included = artifacts.test_object.included_files
    # The test pulled in ONLY its own source and Globals.inc.
    assert len(included) == 2
    assert included[1].endswith("Globals.inc")
    # All global-layer access went through Base_* externs.
    externs = artifacts.test_object.undefined_symbols()
    assert all(symbol.startswith("Base_") for symbol in externs)
    shape(
        "F1: test object includes only Globals.inc; externs = "
        + ", ".join(sorted(externs))
    )
