"""C5 — §5 claim: better test control enables corner-case investigation.

The Figure 6 local placeholder (``TEST_PAGE .EQU TESTn_TARGET_PAGE``)
gives the author local override power while global control remains in
``Globals.inc``.  We sweep corner pages through the *global* knob with
zero test edits, then pin a corner case *locally*.
"""

from repro.core.environment import ModuleTestEnvironment, TestCell
from repro.core.workloads import make_nvm_environment
from repro.soc.derivatives import SC88A, SC88B

from conftest import shape


def test_c5_global_corner_sweep(benchmark):
    """Drive the same unmodified test through corner pages (0, last,
    powers of two) purely via the global defines."""
    corner_pages = [0, 1, 16, 30, 31]

    def sweep():
        passes = 0
        for page in corner_pages:
            env = make_nvm_environment(1, page_overrides={1: page})
            if env.run_test("TEST_NVM_PAGE_001", SC88A).passed:
                passes += 1
        return passes

    passes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert passes == len(corner_pages)
    shape(
        f"C5: corner sweep over pages {corner_pages} via Globals.inc "
        f"only: {passes}/{len(corner_pages)} pass, 0 test edits"
    )


def test_c5_local_override_pins_corner(benchmark):
    """A debugging author pins the corner page locally — the placeholder
    takes precedence without touching the global file."""
    env = make_nvm_environment(1)
    pinned = env.cells["TEST_NVM_PAGE_001"].source.replace(
        "TEST_PAGE .EQU TEST1_TARGET_PAGE",
        "TEST_PAGE .EQU 31    ;; corner pinned for debug",
    )
    env.add_test(TestCell(name="TEST_NVM_CORNER", source=pinned))
    result = benchmark.pedantic(
        env.run_test,
        args=("TEST_NVM_CORNER", SC88A),
        rounds=1,
        iterations=1,
    )
    assert result.passed
    shape("C5: locally pinned corner page 31 passes; global file untouched")


def test_c5_derivative_specific_corner(benchmark):
    """Derivative-specific corner values are allowed only in the
    abstraction layer: page 63 exists on sc88b but not sc88a."""
    env = make_nvm_environment(1)
    env.defines.set_derivative_extra("sc88b", "TEST1_TARGET_PAGE", 63)

    result = benchmark.pedantic(
        env.run_test,
        args=("TEST_NVM_PAGE_001", SC88B),
        rounds=1,
        iterations=1,
    )
    assert result.passed
    shape(
        "C5: derivative-specific corner (page 63, sc88b-only) expressed "
        "in the abstraction layer; test source untouched"
    )
