"""Batched lock-step engine benchmarks (ISSUE 6).

The regression matrix keeps re-running the *same image* across lanes
that only differ in visibility (platform matrix) or in a few RAM words
(stimulus sweep).  The batched interpreter
(:class:`~repro.platforms.session.BatchSession`) executes one engine
pass for the whole cohort and materialises per-lane verdicts at sync
points, peeling true divergence onto the scalar oracle.  This bench
records the acceptance numbers ISSUE 6 ties the engine to:

- wall-clock on a **32-cell identical matrix** (one image, 32 golden
  lanes) vs 32 pooled scalar session runs, asserting the >= 4x floor
  (>= 3x in ``--quick`` mode) — with per-lane byte-identity (status,
  result words, retire traces, cycle counts) checked *before* any
  speed claim;
- a **stimulus sweep** with forced divergence: 32 lanes whose stimulus
  word splits them over the pass/fail branch, asserting byte-identity,
  the expected peel accounting, and the per-lane divergence rows the
  batch engine exposes;
- batch telemetry (``batch_lanes``, ``batch_steps``, ``peel_events``
  plus the PR 5 engine counters) so a silent de-batching (every lane
  quietly peeling to scalar) fails the bench even if wall-clock
  happens to survive.

Emits ``BENCH_batch_engine.json`` next to the repository root.  Also
runnable as a script: ``python benchmarks/bench_batch_engine.py
[--quick]`` — the CI perf-smoke job uses ``--quick`` and fails the
build if the floor or any byte-identity assertion trips.
"""

from __future__ import annotations

import sys
import time

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import make_delay_environment, make_nvm_environment
from repro.platforms import BatchSession, ExecutionSession, make_platform
from repro.soc.derivatives import SC88A
from repro.soc.device import FAIL_MAGIC, PASS_MAGIC

from conftest import shape
from _harness import engine_matrix, BenchResults, best_of, strip_result as strip

RESULTS = BenchResults("batch_engine")
RESULTS["engine_matrix"] = engine_matrix(
    candidate={"engine": "BatchSession lock-step"},
    reference={"engine": "pooled scalar ExecutionSession runs"},
)

MEMORY_MAP = SC88A.memory_map()
#: A RAM word no workload touches (far from data, results and stack).
STIM_ADDR = 0x1000_8000

LANES = 32

#: Full (pytest/CI bench) and quick (perf-smoke gate) configurations.
FULL = {
    "environments": ("nvm", "delay"),
    "repeats": 3,
    "min_speedup": 4.0,
    "mode": "full",
}
QUICK = {
    "environments": ("nvm",),
    "repeats": 2,
    "min_speedup": 3.0,
    "mode": "quick",
}


def matrix_images(config):
    """One representative cell per environment named in *config*."""
    environments = {
        "nvm": lambda: make_nvm_environment(num_tests=1),
        "delay": lambda: make_delay_environment(
            delay_ticks=(20_000,), spin_loops=(50_000,)
        ),
    }
    images = []
    for name in config["environments"]:
        env = environments[name]()
        cell = sorted(env.cells)[0]
        images.append(
            (f"{name}/{cell}", env.build_image(cell, SC88A, TARGET_GOLDEN).image)
        )
    return images


def build_branch_image():
    """Pass/fail branches on the stimulus word (0 -> PASS)."""
    source = f"""\
_main:
    LOAD a4, {STIM_ADDR:#x}
    LD.W d4, [a4]
    CMPI d4, 0
    JNZ lane_fail
    LOAD d0, {PASS_MAGIC:#x}
    STORE [{MEMORY_MAP.result_address:#x}], d0
    HALT
lane_fail:
    LOAD d0, {FAIL_MAGIC:#x}
    STORE [{MEMORY_MAP.result_address:#x}], d0
    HALT
"""
    obj = Assembler().assemble_source(source, "bench_batch.asm")
    return Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])


def scalar_matrix_run(session, image, stimuli):
    """N pooled scalar runs — what the serial executor does per lane."""
    return [session.run(image, stimulus=stimulus) for stimulus in stimuli]


def run_identical_matrix(config) -> dict:
    """The acceptance number: a 32-cell identical matrix through one
    lock-step pass vs 32 pooled scalar runs, byte-identical first."""
    per_image = {}
    total_batch = 0.0
    total_scalar = 0.0
    for label, image in matrix_images(config):
        batch = BatchSession(
            SC88A, [make_platform("golden") for _ in range(LANES)]
        )
        scalar = ExecutionSession(make_platform("golden"), SC88A)
        stimuli = [None] * LANES
        # Warm the shared decode cache for both engines.
        batch.run_batch(image)
        scalar.run(image)

        # Timing covers execution + per-lane verdict materialisation;
        # the strip-to-tuples comparison below is test tooling, not
        # engine work, and runs outside the stopwatch on both sides.
        batch_elapsed, batch_results = best_of(
            config["repeats"], lambda: batch.run_batch(image)
        )
        scalar_elapsed, scalar_results = best_of(
            config["repeats"],
            lambda: scalar_matrix_run(scalar, image, stimuli),
        )
        # Byte-identity before any speed claim: every lane against its
        # own scalar run (status, result words, traces, cycle counts).
        assert [strip(r) for r in batch_results] == [
            strip(r) for r in scalar_results
        ], label
        stats = batch.stats()
        assert stats["batch_lanes"] == LANES, label
        assert stats["batch_steps"] > 0, label
        assert stats["peel_events"] == 0, label
        assert stats["sb_blocks"] > 0, label
        total_batch += batch_elapsed
        total_scalar += scalar_elapsed
        per_image[label] = {
            "lanes": LANES,
            "batch_ms": round(batch_elapsed * 1e3, 3),
            "scalar_ms": round(scalar_elapsed * 1e3, 3),
            "speedup": round(scalar_elapsed / batch_elapsed, 2),
            "batch_steps": stats["batch_steps"],
            "sb_blocks": stats["sb_blocks"],
        }
    return {
        "per_image": per_image,
        "speedup": round(total_scalar / total_batch, 2),
        "min_required": config["min_speedup"],
        "mode": config["mode"],
    }


def run_divergence_sweep(config) -> dict:
    """Stimulus sweep with forced divergence: lanes whose stimulus word
    is nonzero peel at the divergent load; everything byte-identical."""
    image = build_branch_image()
    stimuli = [
        None if lane % 4 == 0 else {STIM_ADDR: lane % 4}
        for lane in range(LANES)
    ]
    expected_peels = sum(1 for s in stimuli if s)

    batch = BatchSession(
        SC88A, [make_platform("golden") for _ in range(LANES)]
    )
    scalar = ExecutionSession(make_platform("golden"), SC88A)
    batch.run_batch(image, stimuli=stimuli)
    scalar.run(image)

    batch_elapsed, batch_results = best_of(
        config["repeats"],
        lambda: batch.run_batch(image, stimuli=stimuli),
    )
    scalar_elapsed, scalar_results = best_of(
        config["repeats"],
        lambda: scalar_matrix_run(scalar, image, stimuli),
    )
    assert [strip(r) for r in batch_results] == [
        strip(r) for r in scalar_results
    ]
    stats = batch.stats()
    assert stats["peel_events"] == expected_peels
    # The batch engine's own divergence data: every peeled lane's rows
    # differ from the leader's (they took the other branch).
    divergences = batch.lane_divergences()
    diverging = {lane for lane, rows in divergences.items() if rows}
    peeled = {
        lane.index for lane in batch.last_lanes if lane.peeled
    }
    assert peeled <= diverging
    return {
        "lanes": LANES,
        "peel_events": stats["peel_events"],
        "diverging_lanes": len(diverging),
        "batch_ms": round(batch_elapsed * 1e3, 3),
        "scalar_ms": round(scalar_elapsed * 1e3, 3),
        "batch_vs_scalar": round(scalar_elapsed / batch_elapsed, 2),
        "mode": config["mode"],
    }


# ---------------------------------------------------------------------------
# pytest entry points (full configuration)
# ---------------------------------------------------------------------------

def test_identical_matrix_speedup():
    numbers = run_identical_matrix(FULL)
    RESULTS["matrix"] = numbers
    shape(
        f"batch_engine: 32-cell identical matrix {numbers['speedup']:.2f}x "
        "vs 32 pooled scalar runs (byte-identical per-lane results)"
    )
    assert numbers["speedup"] >= FULL["min_speedup"], (
        f"batch speedup {numbers['speedup']:.2f}x below "
        f"{FULL['min_speedup']}x target"
    )


def test_divergence_sweep_and_emit_json():
    numbers = run_divergence_sweep(FULL)
    RESULTS["divergence_sweep"] = numbers
    shape(
        f"batch_engine: stimulus sweep peeled {numbers['peel_events']}/"
        f"{numbers['lanes']} lanes at the divergent load, byte-identical"
    )
    path = RESULTS.emit()
    shape(f"batch_engine: wrote {path.name}")


# ---------------------------------------------------------------------------
# script mode: the CI perf-smoke gate
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    config = QUICK if quick else FULL
    try:
        matrix = run_identical_matrix(config)
        sweep = run_divergence_sweep(config)
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        return 1
    RESULTS["matrix"] = matrix
    RESULTS["divergence_sweep"] = sweep
    path = RESULTS.emit()
    print(
        f"batch_engine[{config['mode']}]: 32-lane matrix "
        f"{matrix['speedup']}x (floor {config['min_speedup']}x), "
        f"sweep peeled {sweep['peel_events']}/{sweep['lanes']} lanes "
        f"byte-identically -> {path.name}"
    )
    if matrix["speedup"] < config["min_speedup"]:
        print(
            f"FAIL: matrix speedup {matrix['speedup']}x below the "
            f"{config['min_speedup']}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
