"""F7 — Figure 7: base-function wrappers absorb global-layer changes.

The paper's second worked example: a test needs an embedded-software
function.  The firmware is then rewritten — entry point renamed, input
registers swapped (sc88d).  The wrapped suite ports with a one-file
abstraction-layer edit; a suite calling the firmware directly needs
every test re-factored (indeed, it does not even build).
"""

from repro.core.metrics import diff_files
from repro.core.porting import port_advm_environment
from repro.core.workloads import make_reginit_environment
from repro.soc.derivatives import SC88A, SC88B, SC88D

from conftest import shape


def build_env(derivatives):
    return make_reginit_environment(derivatives=derivatives)


def test_fig7_wrapper_absorbs_firmware_rewrite(benchmark):
    outcome = benchmark(
        port_advm_environment, build_env, [SC88A, SC88B], SC88D
    )
    assert outcome.all_pass
    touched = {d.filename for d in outcome.effort.diffs if d.touched}
    assert "Base_Functions.asm" in touched
    assert not any(name.startswith("TEST_") for name in touched)
    shape(
        "F7: firmware rewrite absorbed by "
        f"{sorted(touched)}; 0 of "
        f"{sum(1 for d in outcome.effort.diffs if d.filename.startswith('TEST_'))} "
        "test files touched; ported suite passes"
    )


def test_fig7_wrapper_delta_is_the_remap(benchmark):
    """The Base_Functions diff contains exactly the paper's remedy: a
    conditional block that re-maps the inputs and the renamed symbol."""
    before = build_env([SC88A, SC88B]).base_functions_text()
    after = benchmark.pedantic(
        build_env([SC88A, SC88B, SC88D]).base_functions_text,
        rounds=1,
        iterations=1,
    )
    diff = diff_files("Base_Functions.asm", before, after)
    assert diff.touched
    assert "ES_InitRegister" in after and "ES_InitRegister" not in before
    assert "MOV a5, a4" in after  # the input re-map
    shape(
        f"F7: wrapper edit = {diff.changed} lines "
        "(.IFDEF block remapping a4/d4 -> a5/d5 and the renamed symbol)"
    )


def test_fig7_unwrapped_suite_cost_scales_with_n(benchmark):
    """Baseline: every direct-calling test must change when the firmware
    changes — the re-factoring cost the wrapper avoids."""
    from repro.core.targets import TARGET_GOLDEN
    from repro.core.workloads import REGINIT_TARGETS, reginit_test_hardwired

    defines = build_env([SC88A]).defines

    def count_touched():
        touched = 0
        for index, (register_define, value) in enumerate(REGINIT_TARGETS):
            before = reginit_test_hardwired(
                index + 1, register_define, value, defines, SC88A,
                TARGET_GOLDEN,
            )
            after = reginit_test_hardwired(
                index + 1, register_define, value, defines, SC88D,
                TARGET_GOLDEN,
            )
            if diff_files("t", before, after).touched:
                touched += 1
        return touched

    changed = benchmark.pedantic(count_touched, rounds=1, iterations=1)
    assert changed == len(REGINIT_TARGETS)
    shape(
        f"F7: baseline re-factoring touches {changed}/{len(REGINIT_TARGETS)} "
        "direct-calling tests (O(N)); wrapper cost is O(1)"
    )
