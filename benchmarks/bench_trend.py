"""Aggregate every ``BENCH_*.json`` into one ``BENCH_trend.json``.

Each engine PR emits its own benchmark JSON (``BENCH_exec_engine``,
``BENCH_memsys``, ``BENCH_dispatch``, ``BENCH_superblock``, ...), which
makes the per-PR speedup trajectory invisible unless someone opens four
files.  This module walks every benchmark JSON next to the repository
root, extracts the speedup/reduction figures wherever they sit in each
bench's schema, tags them with the PR that introduced the bench, and
emits a single ``BENCH_trend.json`` with the chronological trajectory.

Runs as a pytest module (CI wires it after the bench smokes so the
artifact upload carries the aggregate) and as a script::

    python benchmarks/bench_trend.py [--check]

``--check`` turns the write-only trend file into a **regression gate**:
after aggregating, every figure with a committed floor (the
:data:`BENCH_FLOORS` table plus any ``min_required`` embedded in a
bench's own JSON) is compared against its floor, and the run fails if
any measured speedup has dropped below it — so a perf regression in an
*old* bench fails CI instead of silently rewriting the trend.
"""

from __future__ import annotations

import json
import sys

from conftest import shape
from _harness import REPO_ROOT, BenchResults

#: Bench name -> the PR whose ISSUE introduced it (the engine series;
#: figure/claim benches reproduce the paper and carry no speedup
#: trajectory of their own).
BENCH_PR: dict[str, int] = {
    "exec_engine": 1,
    "memsys": 2,
    "dispatch": 3,
    "superblock": 4,
    "trace_fastpath": 5,
    "batch_engine": 6,
    "resilience": 7,
    "jit": 8,
    "serving": 9,
    "artifact_store": 10,
}

#: Committed speedup floors: dotted figure path -> the minimum each
#: engine PR's acceptance tied the repo to.  Deliberately the asserted
#: floors, not the (much higher) measured figures, so noisy CI runners
#: don't flap the gate.  Floors embedded in a bench's own JSON as
#: ``min_required`` (next to a ``speedup``) are honoured additionally.
BENCH_FLOORS: dict[str, dict[str, float]] = {
    "exec_engine": {"matrix.speedup": 2.0},
    "memsys": {"untraced.speedup": 1.3, "traced_coverage.speedup": 2.0},
    "dispatch": {"untraced.speedup": 1.5},
    "superblock": {"delay_fast_forward.speedup": 2.0},
    "trace_fastpath": {
        "traced_coverage.speedup": 2.0,
        "wait_states.speedup": 2.0,
    },
    "batch_engine": {"matrix.speedup": 4.0},
    # PR 7 is a robustness PR: its floor asserts the supervision layer
    # is free (>= 0.95x of raw sessions, i.e. <= 5% overhead), not fast.
    "resilience": {"zero_fault.speedup": 0.95},
    # PR 8 acceptance: >= 2x over the superblock engine on the
    # compute-heavy workloads (quick mode embeds its own 1.5x floor).
    "jit": {"compute.speedup": 2.0},
    # PR 9 acceptance: a warm serving daemon answers the same scenario
    # pack >= 2x faster than a cold per-request service.
    "serving": {"warm_pool.speedup": 2.0},
    # PR 10 acceptance: warming a cold process from the artifact store
    # beats full re-predecode >= 1.5x, and the always-on store layer
    # costs at most 5% on a zero-fault matrix.
    "artifact_store": {
        "warm_start.speedup": 1.5,
        "zero_fault.speedup": 0.95,
    },
}

#: Keys whose numeric values are trajectory figures.
_TREND_KEYS = ("speedup", "reduction")


def extract_figures(data, prefix: str = "") -> dict[str, float]:
    """Every ``speedup``/``reduction`` number in *data*, keyed by its
    dotted path — schema-agnostic, so new benches join the trend by
    just emitting JSON."""
    figures: dict[str, float] = {}
    if isinstance(data, dict):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ) and any(key.endswith(suffix) for suffix in _TREND_KEYS):
                figures[path] = float(value)
            else:
                figures.update(extract_figures(value, path))
    elif isinstance(data, list):
        for index, value in enumerate(data):
            figures.update(extract_figures(value, f"{prefix}[{index}]"))
    return figures


def extract_embedded_floors(data, prefix: str = "") -> dict[str, float]:
    """Floors a bench committed to in its own JSON: every dict carrying
    a ``min_required`` next to a ``speedup`` pins that speedup."""
    floors: dict[str, float] = {}
    if isinstance(data, dict):
        if "speedup" in data and isinstance(
            data.get("min_required"), (int, float)
        ):
            path = f"{prefix}.speedup" if prefix else "speedup"
            floors[path] = float(data["min_required"])
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else key
            floors.update(extract_embedded_floors(value, path))
    elif isinstance(data, list):
        for index, value in enumerate(data):
            floors.update(extract_embedded_floors(value, f"{prefix}[{index}]"))
    return floors


def merged_floors(name: str, data) -> dict[str, float]:
    """Floors governing one bench: committed :data:`BENCH_FLOORS`
    entries win over embedded ``min_required`` values when both exist
    (a quick-mode JSON's lower floor must not weaken the gate);
    embedded floors add coverage for figures the table does not list."""
    floors = extract_embedded_floors(data)
    for figure_path, floor in BENCH_FLOORS.get(name, {}).items():
        floors[figure_path] = max(floor, floors.get(figure_path, floor))
    return floors


def check_floors(benches: dict) -> list[str]:
    """Floor violations across aggregated benches (empty = gate holds).

    A floored figure that vanished from a bench's JSON counts as a
    violation too: a schema change must move its floor explicitly, not
    dodge the gate."""
    violations: list[str] = []
    for name, info in sorted(benches.items()):
        figures = info["figures"]
        for path, floor in sorted(info.get("floors", {}).items()):
            measured = figures.get(path)
            if measured is None:
                violations.append(
                    f"{name}: {path} missing (committed floor {floor}x)"
                )
            elif measured < floor:
                violations.append(
                    f"{name}: {path} = {measured}x below committed "
                    f"floor {floor}x"
                )
    return violations


def build_trend() -> dict:
    benches = {}
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        name = path.stem.removeprefix("BENCH_")
        if name == "trend":
            continue  # never aggregate our own output
        data = json.loads(path.read_text())
        figures = extract_figures(data)
        floors = merged_floors(name, data)
        benches[name] = {
            "pr": BENCH_PR.get(name),
            "figures": figures,
            "floors": floors,
            "peak_speedup": max(figures.values()) if figures else None,
        }
    trajectory = [
        {
            "pr": info["pr"],
            "bench": name,
            "peak_speedup": info["peak_speedup"],
        }
        for name, info in sorted(
            benches.items(),
            key=lambda item: (item[1]["pr"] is None, item[1]["pr"], item[0]),
        )
        if info["pr"] is not None
    ]
    return {"benches": benches, "trajectory": trajectory}


def emit_trend():
    results = BenchResults("trend")
    trend = build_trend()
    results["benches"] = trend["benches"]
    results["trajectory"] = trend["trajectory"]
    return results.emit(), trend


def test_trend_aggregates_every_engine_bench():
    # ``BENCH_*.json`` are generated artifacts (gitignored): CI runs
    # this after the bench smokes, so all engine JSONs exist there.  On
    # a fresh clone where no bench has run yet there is nothing to
    # aggregate — skip rather than fail the suite.
    missing = [
        name
        for name in BENCH_PR
        if not (REPO_ROOT / f"BENCH_{name}.json").exists()
    ]
    if missing:
        import pytest

        pytest.skip(
            "engine bench JSONs not generated yet: "
            + ", ".join(f"BENCH_{name}.json" for name in missing)
        )
    path, trend = emit_trend()
    benches = trend["benches"]
    for name in BENCH_PR:
        assert name in benches, f"BENCH_{name}.json missing from trend"
        assert benches[name]["figures"], f"{name}: no speedup figures"
    prs = [point["pr"] for point in trend["trajectory"]]
    assert prs == sorted(prs)
    # The regression gate itself must hold on the freshly measured
    # numbers (the same check ``--check`` applies in CI).
    assert check_floors(benches) == []
    shape(
        f"trend: {len(benches)} bench files -> {path.name}, trajectory "
        + " ".join(
            f"PR{point['pr']}:{point['peak_speedup']}x"
            for point in trend["trajectory"]
        )
    )


def test_check_floors_flags_regressions():
    """The gate logic: figures below (or missing from) their committed
    floor are violations; healthy figures pass."""
    benches = {
        "alpha": {
            "figures": {"hot.speedup": 4.0, "cold.speedup": 1.1},
            "floors": {"hot.speedup": 2.0, "cold.speedup": 1.5},
        },
        "beta": {
            "figures": {},
            "floors": {"gone.speedup": 2.0},
        },
        "gamma": {
            "figures": {"fine.speedup": 9.9},
            "floors": {"fine.speedup": 2.0},
        },
    }
    violations = check_floors(benches)
    assert len(violations) == 2
    assert any("cold.speedup" in violation for violation in violations)
    assert any("gone.speedup" in violation for violation in violations)
    assert not any("fine" in violation for violation in violations)
    assert check_floors({"gamma": benches["gamma"]}) == []


def test_embedded_floors_are_extracted():
    data = {
        "delay": {"speedup": 5.0, "min_required": 2.0},
        "nested": {"inner": {"speedup": 1.2, "min_required": 1.5}},
        "no_floor": {"speedup": 3.0},
    }
    floors = extract_embedded_floors(data)
    assert floors == {"delay.speedup": 2.0, "nested.inner.speedup": 1.5}


def test_committed_floors_win_over_weaker_embedded_ones():
    """A quick-mode JSON embedding min_required=1.5 must not lower the
    committed 2.0 floor; embedded floors the table doesn't know still
    apply."""
    data = {
        "traced_coverage": {"speedup": 1.7, "min_required": 1.5},
        "extra": {"speedup": 3.0, "min_required": 2.5},
    }
    floors = merged_floors("trace_fastpath", data)
    assert floors["traced_coverage.speedup"] == 2.0
    assert floors["extra.speedup"] == 2.5
    # And the gate therefore flags the 1.7x figure.
    benches = {
        "trace_fastpath": {
            "figures": extract_figures(data),
            "floors": floors,
        }
    }
    assert any(
        "traced_coverage.speedup" in violation
        for violation in check_floors(benches)
    )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    check = "--check" in argv
    path, trend = emit_trend()
    print(f"wrote {path}")
    for point in trend["trajectory"]:
        print(
            f"  PR {point['pr']}: {point['bench']} "
            f"peak speedup {point['peak_speedup']}x"
        )
    if check:
        violations = check_floors(trend["benches"])
        # A floored bench whose JSON never materialized (renamed bench,
        # dropped CI step) must not dodge the gate by absence.
        violations += [
            f"{name}: BENCH_{name}.json missing "
            f"({len(floors)} committed floor(s) unevaluated)"
            for name, floors in sorted(BENCH_FLOORS.items())
            if floors and name not in trend["benches"]
        ]
        if violations:
            for violation in violations:
                print(f"FAIL: {violation}")
            return 1
        floored = sum(
            len(info.get("floors", {}))
            for info in trend["benches"].values()
        )
        print(f"check: {floored} committed floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
