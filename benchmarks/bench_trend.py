"""Aggregate every ``BENCH_*.json`` into one ``BENCH_trend.json``.

Each engine PR emits its own benchmark JSON (``BENCH_exec_engine``,
``BENCH_memsys``, ``BENCH_dispatch``, ``BENCH_superblock``, ...), which
makes the per-PR speedup trajectory invisible unless someone opens four
files.  This module walks every benchmark JSON next to the repository
root, extracts the speedup/reduction figures wherever they sit in each
bench's schema, tags them with the PR that introduced the bench, and
emits a single ``BENCH_trend.json`` with the chronological trajectory.

Runs as a pytest module (CI wires it after the bench smokes so the
artifact upload carries the aggregate) and as a script::

    python benchmarks/bench_trend.py
"""

from __future__ import annotations

import json
import sys

from conftest import shape
from _harness import REPO_ROOT, BenchResults

#: Bench name -> the PR whose ISSUE introduced it (the engine series;
#: figure/claim benches reproduce the paper and carry no speedup
#: trajectory of their own).
BENCH_PR: dict[str, int] = {
    "exec_engine": 1,
    "memsys": 2,
    "dispatch": 3,
    "superblock": 4,
}

#: Keys whose numeric values are trajectory figures.
_TREND_KEYS = ("speedup", "reduction")


def extract_figures(data, prefix: str = "") -> dict[str, float]:
    """Every ``speedup``/``reduction`` number in *data*, keyed by its
    dotted path — schema-agnostic, so new benches join the trend by
    just emitting JSON."""
    figures: dict[str, float] = {}
    if isinstance(data, dict):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ) and any(key.endswith(suffix) for suffix in _TREND_KEYS):
                figures[path] = float(value)
            else:
                figures.update(extract_figures(value, path))
    elif isinstance(data, list):
        for index, value in enumerate(data):
            figures.update(extract_figures(value, f"{prefix}[{index}]"))
    return figures


def build_trend() -> dict:
    benches = {}
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        name = path.stem.removeprefix("BENCH_")
        if name == "trend":
            continue  # never aggregate our own output
        data = json.loads(path.read_text())
        figures = extract_figures(data)
        benches[name] = {
            "pr": BENCH_PR.get(name),
            "figures": figures,
            "peak_speedup": max(figures.values()) if figures else None,
        }
    trajectory = [
        {
            "pr": info["pr"],
            "bench": name,
            "peak_speedup": info["peak_speedup"],
        }
        for name, info in sorted(
            benches.items(),
            key=lambda item: (item[1]["pr"] is None, item[1]["pr"], item[0]),
        )
        if info["pr"] is not None
    ]
    return {"benches": benches, "trajectory": trajectory}


def emit_trend():
    results = BenchResults("trend")
    trend = build_trend()
    results["benches"] = trend["benches"]
    results["trajectory"] = trend["trajectory"]
    return results.emit(), trend


def test_trend_aggregates_every_engine_bench():
    # ``BENCH_*.json`` are generated artifacts (gitignored): CI runs
    # this after the bench smokes, so all engine JSONs exist there.  On
    # a fresh clone where no bench has run yet there is nothing to
    # aggregate — skip rather than fail the suite.
    missing = [
        name
        for name in BENCH_PR
        if not (REPO_ROOT / f"BENCH_{name}.json").exists()
    ]
    if missing:
        import pytest

        pytest.skip(
            "engine bench JSONs not generated yet: "
            + ", ".join(f"BENCH_{name}.json" for name in missing)
        )
    path, trend = emit_trend()
    benches = trend["benches"]
    for name in BENCH_PR:
        assert name in benches, f"BENCH_{name}.json missing from trend"
        assert benches[name]["figures"], f"{name}: no speedup figures"
    prs = [point["pr"] for point in trend["trajectory"]]
    assert prs == sorted(prs)
    shape(
        f"trend: {len(benches)} bench files -> {path.name}, trajectory "
        + " ".join(
            f"PR{point['pr']}:{point['peak_speedup']}x"
            for point in trend["trajectory"]
        )
    )


def main() -> int:
    path, trend = emit_trend()
    print(f"wrote {path}")
    for point in trend["trajectory"]:
        print(
            f"  PR {point['pr']}: {point['bench']} "
            f"peak speedup {point['peak_speedup']}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
