"""Observation-grade fast path benchmarks (ISSUE 5).

The paper's product *is* the observed run — coverage from bus traces,
retire traces, cycle-accurate timing — yet until this PR the superblock
engine self-disabled the moment any of those was on, so exactly the
runs the methodology cares about executed on the per-instruction path.
This bench records the numbers ISSUE 5 ties the observed engine to,
against ``use_superblocks=False`` (which under observation is the
per-step reference loop — the PR 4 fallback behaviour):

- instructions/sec on a **traced coverage run** (golden model,
  instruction trace + unbounded bus-trace recording, the functional
  coverage configuration) over the delay-heavy workloads, asserting
  the >= 2x floor (>= 1.5x in ``--quick`` mode);
- instructions/sec on a **wait-state platform run** (RTL: cycle
  accurate, instruction traced) over the same workloads, same floors —
  exercising the static fetch-wait folding;
- byte-identical signature / cycles / retire trace / bus access stream
  / IRQ-delivery timing against the reference on every measured cell,
  checked *before* any speed claim, plus the interrupt-heavy timer
  suite under full observation;
- fast-path telemetry (``ff_warps``, superblocks executed, template
  replays, legacy fallbacks) so a regression in fast-path *coverage*
  (a new silent self-disable) fails the bench even if wall-clock
  happens to survive.

Emits ``BENCH_trace_fastpath.json`` next to the repository root.  Also
runnable as a script: ``python benchmarks/bench_trace_fastpath.py
[--quick]`` — the CI perf-smoke job uses ``--quick`` and fails the
build if a floor or any byte-identity assertion trips.
"""

from __future__ import annotations

import sys
import time

from repro.core.targets import TARGET_GOLDEN, TARGET_RTL
from repro.core.workloads import (
    make_delay_environment,
    make_timer_environment,
)
from repro.platforms import ExecutionSession, GoldenModel, RtlSim
from repro.soc.derivatives import SC88A
from repro.soc.device import PASS_MAGIC

from conftest import shape
from _harness import engine_matrix, BenchResults, best_rate, strip_result as strip

RESULTS = BenchResults("trace_fastpath")
RESULTS["engine_matrix"] = engine_matrix(
    candidate={"use_superblocks": True},
    reference={
        "use_superblocks": False,
        "note": "per-step loop under observation",
    },
)

#: Full (pytest/CI bench) and quick (perf-smoke gate) configurations.
FULL = {
    "delay_ticks": (60_000,),
    "spin_loops": (150_000,),
    "repeats": 3,
    "min_speedup": 2.0,
    "mode": "full",
}
QUICK = {
    "delay_ticks": (15_000,),
    "spin_loops": (40_000,),
    "repeats": 2,
    "min_speedup": 1.5,
    "mode": "quick",
}

#: The two observed configurations the ISSUE names: a traced coverage
#: run (functional platform, bus trace recorded for the coverage
#: collector) and a cycle-accurate wait-state run.
SCENARIOS = (
    ("traced_coverage", GoldenModel, TARGET_GOLDEN, True),
    ("wait_states", RtlSim, TARGET_RTL, False),
)


def observed_session(platform_cls, *, record_bus, fast: bool):
    platform = platform_cls()
    platform.record_bus_trace = record_bus
    if fast:
        return ExecutionSession(platform, SC88A)
    # Under observation ``use_superblocks=False`` lands on the per-step
    # reference loop — exactly the pre-ISSUE 5 fallback behaviour.
    return ExecutionSession(platform, SC88A, use_superblocks=False)


def timed_observed_run(image, platform_cls, *, record_bus, fast):
    session = observed_session(platform_cls, record_bus=record_bus, fast=fast)
    start = time.perf_counter()
    result = session.run(image)
    elapsed = time.perf_counter() - start
    assert result.signature == PASS_MAGIC
    bus_events = (
        None
        if session.platform.last_bus_trace is None
        else list(session.platform.last_bus_trace.raw())
    )
    return (
        result.instructions / elapsed,
        result,
        bus_events,
        session.stats(),
    )


def scenario_images(config, target):
    env = make_delay_environment(
        delay_ticks=config["delay_ticks"], spin_loops=config["spin_loops"]
    )
    return [
        (cell, env.build_image(cell, SC88A, target).image)
        for cell in env.cells
    ]


def run_observed_speedup(config) -> dict:
    """The acceptance numbers: observed superblock engine vs the
    per-step fallback on the traced-coverage and wait-state scenarios,
    byte-identical (outcome, retire trace, bus access stream) first."""
    scenarios = {}
    for name, platform_cls, target, record_bus in SCENARIOS:
        per_cell = {}
        total_fast = 0.0
        total_fallback = 0.0
        warps_total = 0
        blocks_total = 0
        replays_total = 0
        for cell, image in scenario_images(config, target):
            fast_ips, (fast_result, fast_bus, fast_stats) = best_rate(
                config["repeats"],
                lambda: timed_observed_run(
                    image, platform_cls, record_bus=record_bus, fast=True
                ),
            )
            fallback_ips, (fb_result, fb_bus, fb_stats) = best_rate(
                config["repeats"],
                lambda: timed_observed_run(
                    image, platform_cls, record_bus=record_bus, fast=False
                ),
            )
            # Byte-identity before any speed claim: outcome (incl. the
            # retire trace and cycle counts) and the bus access stream.
            assert strip(fast_result) == strip(fb_result), (name, cell)
            assert fast_bus == fb_bus, (name, cell)
            # Fast-path coverage: the engine really ran (blocks, warps,
            # bulk template replays) with no silent per-step fallbacks,
            # and the reference really stayed off it.
            assert fast_stats["sb_blocks"] > 0, (name, cell)
            assert fast_stats["sb_replays"] > 0, (name, cell)
            assert fast_stats["sb_fallback_steps"] == 0, (name, cell)
            assert fast_stats["ff_warps"] > 0, (name, cell)
            assert fb_stats["sb_blocks"] == 0, (name, cell)
            instructions = fast_result.instructions
            total_fast += instructions / fast_ips
            total_fallback += instructions / fallback_ips
            warps_total += fast_stats["ff_warps"]
            blocks_total += fast_stats["sb_blocks"]
            replays_total += fast_stats["sb_replays"]
            per_cell[cell] = {
                "instructions": instructions,
                "fallback_ips": round(fallback_ips),
                "fast_ips": round(fast_ips),
                "speedup": round(fast_ips / fallback_ips, 2),
                "ff_warps": fast_stats["ff_warps"],
                "sb_blocks": fast_stats["sb_blocks"],
                "sb_replays": fast_stats["sb_replays"],
                "sb_fallback_steps": fast_stats["sb_fallback_steps"],
            }
        scenarios[name] = {
            "per_cell": per_cell,
            "speedup": round(total_fallback / total_fast, 2),
            "min_required": config["min_speedup"],
            "telemetry": {
                "ff_warps": warps_total,
                "sb_blocks": blocks_total,
                "sb_replays": replays_total,
            },
            "mode": config["mode"],
        }
    return scenarios


def run_irq_identity_under_observation() -> dict:
    """Interrupt-heavy timer suite under full observation (instruction
    trace + bus trace, golden and RTL): delivery timing and every
    recorded event byte-identical to the per-step fallback."""
    cells_checked = 0
    for _name, platform_cls, target, _record in SCENARIOS:
        env = make_timer_environment()
        for cell in env.cells:
            image = env.build_image(cell, SC88A, target).image
            _, fast_result, fast_bus, fast_stats = timed_observed_run(
                image, platform_cls, record_bus=True, fast=True
            )
            _, fb_result, fb_bus, _ = timed_observed_run(
                image, platform_cls, record_bus=True, fast=False
            )
            assert strip(fast_result) == strip(fb_result), cell
            assert fast_bus == fb_bus, cell
            assert fast_stats["sb_fallback_steps"] == 0, cell
            cells_checked += 1
    return {"irq_cells": cells_checked}


# ---------------------------------------------------------------------------
# pytest entry points (full configuration)
# ---------------------------------------------------------------------------

def test_observed_fastpath_speedup():
    scenarios = run_observed_speedup(FULL)
    for name, numbers in scenarios.items():
        RESULTS[name] = numbers
        shape(
            f"trace_fastpath: {name} {numbers['speedup']:.2f}x vs the "
            "per-step fallback "
            f"({numbers['telemetry']['ff_warps']} warps, "
            f"{numbers['telemetry']['sb_blocks']} blocks, "
            "byte-identical outcome/trace/bus stream)"
        )
        assert numbers["speedup"] >= FULL["min_speedup"], (
            f"{name} speedup {numbers['speedup']:.2f}x below "
            f"{FULL['min_speedup']}x target"
        )


def test_irq_identity_and_emit_json():
    numbers = run_irq_identity_under_observation()
    RESULTS["equivalence"] = numbers
    shape(
        f"trace_fastpath: {numbers['irq_cells']} interrupt-heavy fully "
        "observed runs byte-identical to the per-step fallback"
    )
    path = RESULTS.emit()
    shape(f"trace_fastpath: wrote {path.name}")


# ---------------------------------------------------------------------------
# script mode: the CI perf-smoke gate
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    config = QUICK if quick else FULL
    try:
        scenarios = run_observed_speedup(config)
        equivalence = run_irq_identity_under_observation()
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        return 1
    for name, numbers in scenarios.items():
        RESULTS[name] = numbers
    RESULTS["equivalence"] = equivalence
    path = RESULTS.emit()
    summary = ", ".join(
        f"{name} {numbers['speedup']}x" for name, numbers in scenarios.items()
    )
    print(
        f"trace_fastpath[{config['mode']}]: {summary} "
        f"(floor {config['min_speedup']}x), "
        f"{equivalence['irq_cells']} observed IRQ cells byte-identical "
        f"-> {path.name}"
    )
    failed = [
        name
        for name, numbers in scenarios.items()
        if numbers["speedup"] < config["min_speedup"]
    ]
    if failed:
        print(
            f"FAIL: {', '.join(failed)} below the "
            f"{config['min_speedup']}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
