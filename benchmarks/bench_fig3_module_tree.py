"""F3 — Figure 3: module directory structure.

Generates the on-disk module tree (Abstraction_Layer/, TESTPLAN.TXT, one
directory per test cell), validates it, and round-trips it back into a
runnable environment.
"""

from pathlib import Path

from repro.core.workloads import make_nvm_environment
from repro.core.workspace import (
    load_module_environment,
    validate_module_tree,
    write_module_environment,
)
from repro.soc.derivatives import SC88A

from conftest import shape


def test_fig3_tree_generation(benchmark, tmp_path):
    env = make_nvm_environment(4)

    counter = {"n": 0}

    def write_once():
        counter["n"] += 1
        return write_module_environment(env, tmp_path / str(counter["n"]))

    module_dir = benchmark(write_once)
    issues = validate_module_tree(module_dir)
    assert issues == []
    entries = sorted(p.name for p in Path(module_dir).iterdir())
    assert "Abstraction_Layer" in entries
    assert "TESTPLAN.TXT" in entries
    cell_dirs = [e for e in entries if e.startswith("TEST_")]
    assert len(cell_dirs) == 4
    shape(f"F3: module tree = Abstraction_Layer + TESTPLAN.TXT + {len(cell_dirs)} test cells")


def test_fig3_round_trip_runs(tmp_path, benchmark):
    env = make_nvm_environment(2)
    module_dir = write_module_environment(env, tmp_path)
    loaded = benchmark.pedantic(
        load_module_environment, args=(module_dir,), rounds=1, iterations=1
    )
    results = loaded.run_all(SC88A)
    assert all(r.passed for r in results.values())
    shape("F3: tree round-trips into a runnable environment (2/2 pass)")


def test_fig3_testplan_grepable(tmp_path, benchmark):
    env = make_nvm_environment(3)
    module_dir = write_module_environment(env, tmp_path)
    text = benchmark.pedantic(
        (module_dir / "TESTPLAN.TXT").read_text, rounds=1, iterations=1
    )
    # "it can be searched (grep'ed) easily from the command line"
    hits = [line for line in text.splitlines() if "NVM_" in line]
    assert len(hits) == 3
    shape(f"F3: TESTPLAN.TXT is plain text; grep 'NVM_' -> {len(hits)} hits")
