"""C1 — §1 claim: one assembler suite runs on all development platforms.

Runs the NVM suite on all six platforms; every platform that can report a
verdict reports PASS, and the relative simulation-speed spread matches the
paper-era ordering (golden >> RTL >> gates).
"""

from repro.core.regression import quick_regression
from repro.core.workloads import make_nvm_environment
from repro.platforms import PLATFORM_CLASSES
from repro.platforms.base import RunStatus
from repro.soc.derivatives import SC88A

from conftest import shape


def test_c1_suite_runs_on_all_six_platforms(benchmark):
    env = make_nvm_environment(2)
    report = benchmark.pedantic(
        quick_regression, args=(env, SC88A), rounds=1, iterations=1
    )
    assert report.total_runs == 2 * 6
    statuses = {r.status for r in report.results.values()}
    assert statuses == {RunStatus.PASS}
    assert report.divergences == []
    shape(
        f"C1: {report.total_runs}/{report.total_runs} runs pass across "
        "golden/rtl/gatelevel/accelerator/bondout/silicon; 0 divergences"
    )


def test_c1_platform_speed_ordering(benchmark):
    """The platforms span orders of magnitude in simulated speed — the
    reason one portable suite matters."""
    speeds = benchmark.pedantic(
        lambda: {
            name: cls.relative_speed
            for name, cls in PLATFORM_CLASSES.items()
        },
        rounds=1,
        iterations=1,
    )
    assert speeds["golden"] / speeds["rtl"] >= 100
    assert speeds["rtl"] / speeds["gatelevel"] >= 10
    assert speeds["silicon"] > speeds["golden"]
    ordering = sorted(speeds, key=speeds.get)
    shape(f"C1: simulation speed ordering (slow -> fast): {ordering}")


def test_c1_cycle_counts_differ_but_verdicts_agree(benchmark):
    """Timing differs per platform (wait states on RTL/gates); verdicts
    must not."""
    from repro.core.targets import TARGET_GOLDEN, TARGET_RTL

    env = make_nvm_environment(1)

    def run_both():
        golden = env.run_test("TEST_NVM_PAGE_001", SC88A, "golden")
        rtl = env.run_test("TEST_NVM_PAGE_001", SC88A, "rtl")
        return golden, rtl

    golden, rtl = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert golden.status is rtl.status is RunStatus.PASS
    # Wait states make RTL cycles-per-instruction higher; status-polling
    # loops therefore spin fewer times, so instruction counts legitimately
    # differ while the verdict does not.
    assert rtl.cycles / rtl.instructions > golden.cycles / golden.instructions
    shape(
        "C1: identical verdicts; cycles/instr = "
        f"{golden.cycles / golden.instructions:.1f} (golden) vs "
        f"{rtl.cycles / rtl.instructions:.1f} (rtl) for the same test"
    )
